//! Filesystem seam for the suite store: a [`Vfs`] trait with a real backend
//! and a deterministic fault-injection backend, plus the bounded
//! [`RetryPolicy`] the store uses to heal transient I/O.
//!
//! Every byte the store reads or writes goes through a [`Vfs`], so the whole
//! export/verify/eval/analytics stack can be driven under *scripted* faults:
//! [`FaultVfs`] consumes a [`FaultPlan`] — a list of "the nth operation of
//! this kind fails like so" entries — and each fault fires exactly once, in a
//! deterministic order for a fixed schedule of operations. A seeded plan
//! ([`FaultPlan::seeded`]) turns any `u64` into such a schedule, which is
//! what the chaos suite fuzzes over: for *any* seed, retry + resume must
//! converge to a byte-identical corpus and bit-identical reports.
//!
//! Fault kinds model the failure classes a long corpus run actually meets:
//! plain I/O errors, `ENOSPC`, a torn write (a prefix of the bytes lands on
//! disk before the error), and read corruption (the caller sees mangled
//! bytes although the file is fine).

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::Path;
use std::sync::Mutex;
use std::time::Duration;

/// The filesystem operations the suite store performs, as a trait so tests
/// can interpose deterministic faults between the store and the disk.
///
/// All paths are the store's real on-disk paths; implementations other than
/// [`RealVfs`] are expected to *wrap* the real filesystem (inject, then
/// delegate), not replace it — the store's atomicity guarantees are about
/// what lands on the actual disk.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Reads the entire file at `path` as UTF-8.
    fn read_to_string(&self, path: &Path) -> io::Result<String>;

    /// Writes `text` to `path`, creating or truncating it.
    fn write(&self, path: &Path, text: &str) -> io::Result<()>;

    /// Atomically renames `from` to `to` (same filesystem).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Creates `path` and any missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Removes the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Flushes the file's contents and metadata to the storage device.
    fn sync_file(&self, path: &Path) -> io::Result<()>;

    /// Flushes the directory entry table at `path` to the storage device
    /// (what makes a completed rename survive power loss).
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
}

/// The production [`Vfs`]: thin delegation to `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealVfs;

impl Vfs for RealVfs {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        std::fs::read_to_string(path)
    }

    fn write(&self, path: &Path, text: &str) -> io::Result<()> {
        std::fs::write(path, text)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        // Opening a directory read-only and fsyncing it is the POSIX idiom;
        // on platforms where directories cannot be opened this degrades to a
        // no-op rather than failing the commit.
        match std::fs::File::open(path) {
            Ok(dir) => dir.sync_all(),
            Err(_) => Ok(()),
        }
    }
}

/// The operation classes a [`Fault`] can target. Each class has its own
/// operation counter inside [`FaultVfs`], so "the 3rd write" and "the 3rd
/// read" are independent coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OpKind {
    /// [`Vfs::read_to_string`].
    Read,
    /// [`Vfs::write`].
    Write,
    /// [`Vfs::rename`].
    Rename,
    /// [`Vfs::create_dir_all`].
    CreateDir,
    /// [`Vfs::remove_file`].
    Remove,
    /// [`Vfs::sync_file`].
    SyncFile,
    /// [`Vfs::sync_dir`].
    SyncDir,
}

impl OpKind {
    /// Stable lower-case name, used in injected error messages and fault
    /// logs.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Read => "read",
            OpKind::Write => "write",
            OpKind::Rename => "rename",
            OpKind::CreateDir => "create-dir",
            OpKind::Remove => "remove",
            OpKind::SyncFile => "sync-file",
            OpKind::SyncDir => "sync-dir",
        }
    }
}

/// How an injected fault manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails with a generic I/O error; nothing touches disk.
    Error,
    /// The operation fails with "no space left on device".
    Enospc,
    /// Write only: a *prefix* of the bytes lands on disk, then the write
    /// errors — the torn-temp-file scenario atomic commits must survive.
    TornWrite,
    /// Read only: the read "succeeds" but returns mangled bytes, as if the
    /// medium rotted under a valid file.
    CorruptRead,
}

impl FaultKind {
    fn name(self) -> &'static str {
        match self {
            FaultKind::Error => "error",
            FaultKind::Enospc => "enospc",
            FaultKind::TornWrite => "torn-write",
            FaultKind::CorruptRead => "corrupt-read",
        }
    }
}

/// One scheduled fault: the `at`-th operation (0-based) of kind `op` fails
/// as `kind`. Each fault fires exactly once; the same operation retried
/// afterwards succeeds (unless another fault is scheduled at the next
/// index), which is exactly the transient-failure model the store's
/// [`RetryPolicy`] is built to absorb. Scheduling faults at consecutive
/// indices models a *persistent* failure that exhausts the retry budget and
/// surfaces to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Operation class the fault targets.
    pub op: OpKind,
    /// 0-based index among operations of that class.
    pub at: u64,
    /// How the operation fails.
    pub kind: FaultKind,
}

/// A deterministic, schedulable set of [`Fault`]s for a [`FaultVfs`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (the [`FaultVfs`] behaves like [`RealVfs`]).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds one scheduled fault.
    pub fn with_fault(mut self, op: OpKind, at: u64, kind: FaultKind) -> Self {
        self.faults.push(Fault { op, at, kind });
        self
    }

    /// Fails the `n`-th write with a plain I/O error.
    pub fn fail_nth_write(self, n: u64) -> Self {
        self.with_fault(OpKind::Write, n, FaultKind::Error)
    }

    /// Tears the `n`-th write: a prefix lands on disk, then the write errors.
    pub fn torn_nth_write(self, n: u64) -> Self {
        self.with_fault(OpKind::Write, n, FaultKind::TornWrite)
    }

    /// Fails the `n`-th write with `ENOSPC`.
    pub fn enospc_nth_write(self, n: u64) -> Self {
        self.with_fault(OpKind::Write, n, FaultKind::Enospc)
    }

    /// Fails the `n`-th rename.
    pub fn fail_nth_rename(self, n: u64) -> Self {
        self.with_fault(OpKind::Rename, n, FaultKind::Error)
    }

    /// Corrupts the bytes returned by the `n`-th read.
    pub fn corrupt_nth_read(self, n: u64) -> Self {
        self.with_fault(OpKind::Read, n, FaultKind::CorruptRead)
    }

    /// Derives a pseudo-random plan from `seed` (SplitMix64): between 1 and
    /// 8 faults over the first few dozen operations of each class, each
    /// fault kind drawn from the kinds valid for its operation. The same
    /// seed always yields the same plan — this is the surface the chaos
    /// suite fuzzes.
    pub fn seeded(seed: u64) -> Self {
        let mut state = seed;
        let mut next = move || -> u64 {
            // SplitMix64 (Steele et al.), the same mixer the engine uses for
            // per-job seeds.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let count = 1 + (next() % 8) as usize;
        let mut plan = FaultPlan::new();
        for _ in 0..count {
            let op = match next() % 8 {
                0 | 1 => OpKind::Read,
                2..=4 => OpKind::Write,
                5 => OpKind::Rename,
                6 => OpKind::CreateDir,
                _ => OpKind::SyncFile,
            };
            let at = next() % 40;
            let kind = match op {
                OpKind::Read => {
                    if next() % 2 == 0 {
                        FaultKind::CorruptRead
                    } else {
                        FaultKind::Error
                    }
                }
                OpKind::Write => match next() % 3 {
                    0 => FaultKind::TornWrite,
                    1 => FaultKind::Enospc,
                    _ => FaultKind::Error,
                },
                _ => FaultKind::Error,
            };
            plan = plan.with_fault(op, at, kind);
        }
        plan
    }

    /// The scheduled faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }
}

/// One fault that actually fired, for test accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// Operation class that failed.
    pub op: OpKind,
    /// How it failed.
    pub kind: FaultKind,
    /// Path the operation targeted.
    pub path: String,
}

#[derive(Debug, Default)]
struct FaultState {
    counters: BTreeMap<OpKind, u64>,
    pending: BTreeMap<(OpKind, u64), FaultKind>,
    injected: Vec<InjectedFault>,
}

/// A [`Vfs`] that injects the faults of a [`FaultPlan`] and otherwise
/// delegates to the real filesystem. Thread-safe; operation counters are
/// global across all paths, so a fixed operation schedule (e.g. a
/// single-threaded export) sees a fully deterministic fault sequence.
#[derive(Debug)]
pub struct FaultVfs {
    inner: RealVfs,
    state: Mutex<FaultState>,
}

impl FaultVfs {
    /// Wraps the real filesystem with `plan`. When two faults target the
    /// same `(op, at)` coordinate, the first scheduled wins.
    pub fn new(plan: FaultPlan) -> Self {
        let mut pending = BTreeMap::new();
        for fault in plan.faults() {
            pending.entry((fault.op, fault.at)).or_insert(fault.kind);
        }
        FaultVfs {
            inner: RealVfs,
            state: Mutex::new(FaultState {
                counters: BTreeMap::new(),
                pending,
                injected: Vec::new(),
            }),
        }
    }

    /// Advances the operation counter for `op` and pops the fault scheduled
    /// at that index, if any.
    fn trip(&self, op: OpKind, path: &Path) -> Option<FaultKind> {
        let mut state = self.state.lock().expect("fault state mutex");
        let counter = state.counters.entry(op).or_insert(0);
        let index = *counter;
        *counter += 1;
        let kind = state.pending.remove(&(op, index))?;
        state.injected.push(InjectedFault {
            op,
            kind,
            path: path.display().to_string(),
        });
        Some(kind)
    }

    /// Every fault that has fired so far, in firing order.
    pub fn injected(&self) -> Vec<InjectedFault> {
        self.state
            .lock()
            .expect("fault state mutex")
            .injected
            .clone()
    }

    /// Number of scheduled faults that have not fired yet.
    pub fn pending_faults(&self) -> usize {
        self.state.lock().expect("fault state mutex").pending.len()
    }

    fn error(op: OpKind, kind: FaultKind, path: &Path) -> io::Error {
        let message = match kind {
            FaultKind::Enospc => format!(
                "No space left on device (injected {} fault at {})",
                op.name(),
                path.display()
            ),
            _ => format!(
                "injected {} fault ({}) at {}",
                op.name(),
                kind.name(),
                path.display()
            ),
        };
        io::Error::other(message)
    }
}

impl Vfs for FaultVfs {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        match self.trip(OpKind::Read, path) {
            Some(FaultKind::CorruptRead) => {
                // The file itself stays intact; only this read sees rot.
                let mut text = self.inner.read_to_string(path)?;
                let mut cut = text.len() / 2;
                while !text.is_char_boundary(cut) {
                    cut -= 1;
                }
                text.truncate(cut);
                text.push_str("## injected read corruption ##");
                Ok(text)
            }
            Some(kind) => Err(Self::error(OpKind::Read, kind, path)),
            None => self.inner.read_to_string(path),
        }
    }

    fn write(&self, path: &Path, text: &str) -> io::Result<()> {
        match self.trip(OpKind::Write, path) {
            Some(FaultKind::TornWrite) => {
                let mut cut = text.len() / 2;
                while !text.is_char_boundary(cut) {
                    cut -= 1;
                }
                self.inner.write(path, &text[..cut])?;
                Err(Self::error(OpKind::Write, FaultKind::TornWrite, path))
            }
            Some(kind) => Err(Self::error(OpKind::Write, kind, path)),
            None => self.inner.write(path, text),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.trip(OpKind::Rename, from) {
            Some(kind) => Err(Self::error(OpKind::Rename, kind, from)),
            None => self.inner.rename(from, to),
        }
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        match self.trip(OpKind::CreateDir, path) {
            Some(kind) => Err(Self::error(OpKind::CreateDir, kind, path)),
            None => self.inner.create_dir_all(path),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.trip(OpKind::Remove, path) {
            Some(kind) => Err(Self::error(OpKind::Remove, kind, path)),
            None => self.inner.remove_file(path),
        }
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        match self.trip(OpKind::SyncFile, path) {
            Some(kind) => Err(Self::error(OpKind::SyncFile, kind, path)),
            None => self.inner.sync_file(path),
        }
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        match self.trip(OpKind::SyncDir, path) {
            Some(kind) => Err(Self::error(OpKind::SyncDir, kind, path)),
            None => self.inner.sync_dir(path),
        }
    }
}

/// Bounded retry with exponential backoff for transient I/O. `NotFound` is
/// never retried (an absent file is a fact, not a glitch); everything else
/// gets up to `attempts` tries with the delay doubling between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (including the first); clamped to at least 1.
    pub attempts: u32,
    /// Delay before the first retry; doubles per subsequent retry.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            backoff: Duration::from_millis(2),
        }
    }
}

impl RetryPolicy {
    /// A single attempt, no retries.
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            backoff: Duration::ZERO,
        }
    }

    /// Sets the attempt budget (clamped to at least 1).
    pub fn with_attempts(mut self, attempts: u32) -> Self {
        self.attempts = attempts.max(1);
        self
    }

    /// Drops the inter-attempt sleep (tests that hammer faults shouldn't
    /// wait out real backoff).
    pub fn without_backoff(mut self) -> Self {
        self.backoff = Duration::ZERO;
        self
    }

    /// Runs `op` under this policy, returning the first success or the last
    /// error once the budget is exhausted.
    pub fn run<T>(&self, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        let mut delay = self.backoff;
        let mut last = None;
        for attempt in 0..self.attempts.max(1) {
            if attempt > 0 && !delay.is_zero() {
                std::thread::sleep(delay);
                delay = delay.saturating_mul(2);
            }
            match op() {
                Ok(value) => return Ok(value),
                Err(error) if error.kind() == io::ErrorKind::NotFound => return Err(error),
                Err(error) => last = Some(error),
            }
        }
        Err(last.expect("at least one attempt runs"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(name: &str) -> Self {
            let path =
                std::env::temp_dir().join(format!("qubikos-vfs-{}-{name}", std::process::id()));
            let _ = std::fs::remove_dir_all(&path);
            std::fs::create_dir_all(&path).expect("create temp dir");
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn real_vfs_round_trips() {
        let dir = TempDir::new("real");
        let vfs = RealVfs;
        let path = dir.0.join("a.txt");
        vfs.write(&path, "hello").expect("write");
        vfs.sync_file(&path).expect("sync file");
        vfs.sync_dir(&dir.0).expect("sync dir");
        assert_eq!(vfs.read_to_string(&path).expect("read"), "hello");
        let moved = dir.0.join("b.txt");
        vfs.rename(&path, &moved).expect("rename");
        assert_eq!(vfs.read_to_string(&moved).expect("read"), "hello");
        vfs.remove_file(&moved).expect("remove");
        assert_eq!(
            vfs.read_to_string(&moved).unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
    }

    #[test]
    fn faults_fire_once_at_their_scheduled_index() {
        let dir = TempDir::new("fire-once");
        let vfs = FaultVfs::new(FaultPlan::new().fail_nth_write(1));
        let path = dir.0.join("x.txt");
        vfs.write(&path, "first").expect("write 0 clean");
        let err = vfs.write(&path, "second").expect_err("write 1 faulted");
        assert!(err.to_string().contains("injected write fault"));
        vfs.write(&path, "third").expect("write 2 clean again");
        assert_eq!(vfs.read_to_string(&path).expect("read"), "third");
        assert_eq!(vfs.pending_faults(), 0);
        assert_eq!(vfs.injected().len(), 1);
    }

    #[test]
    fn torn_write_leaves_a_prefix_and_corrupt_read_mangles_bytes() {
        let dir = TempDir::new("torn");
        let vfs = FaultVfs::new(FaultPlan::new().torn_nth_write(0).corrupt_nth_read(0));
        let path = dir.0.join("t.txt");
        vfs.write(&path, "0123456789")
            .expect_err("torn write errors");
        assert_eq!(
            std::fs::read_to_string(&path).expect("prefix on disk"),
            "01234",
            "torn write must leave a strict prefix behind"
        );
        std::fs::write(&path, "0123456789").expect("repair");
        let mangled = vfs.read_to_string(&path).expect("corrupt read 'succeeds'");
        assert_ne!(mangled, "0123456789");
        assert_eq!(
            vfs.read_to_string(&path).expect("next read clean"),
            "0123456789"
        );
    }

    #[test]
    fn seeded_plans_are_deterministic_and_well_formed() {
        for seed in 0..64 {
            let a = FaultPlan::seeded(seed);
            let b = FaultPlan::seeded(seed);
            assert_eq!(a, b, "seed {seed} must be reproducible");
            assert!(!a.faults().is_empty());
            for fault in a.faults() {
                match fault.kind {
                    FaultKind::TornWrite | FaultKind::Enospc => {
                        assert_eq!(fault.op, OpKind::Write)
                    }
                    FaultKind::CorruptRead => assert_eq!(fault.op, OpKind::Read),
                    FaultKind::Error => {}
                }
            }
        }
        assert_ne!(
            FaultPlan::seeded(1),
            FaultPlan::seeded(2),
            "different seeds should differ"
        );
    }

    #[test]
    fn retry_heals_transient_faults_but_not_persistent_ones() {
        let dir = TempDir::new("retry");
        let retry = RetryPolicy::default().without_backoff();
        let path = dir.0.join("r.txt");

        // One transient fault: absorbed.
        let vfs = FaultVfs::new(FaultPlan::new().enospc_nth_write(0));
        retry
            .run(|| vfs.write(&path, "ok"))
            .expect("retry heals a one-shot fault");
        assert_eq!(std::fs::read_to_string(&path).expect("read"), "ok");

        // Three consecutive faults exhaust a 3-attempt budget: surfaced.
        let vfs = FaultVfs::new(
            FaultPlan::new()
                .fail_nth_write(0)
                .fail_nth_write(1)
                .fail_nth_write(2),
        );
        retry
            .run(|| vfs.write(&path, "no"))
            .expect_err("persistent failure surfaces");

        // NotFound short-circuits instead of burning attempts.
        let vfs = FaultVfs::new(FaultPlan::new().corrupt_nth_read(1));
        let missing = dir.0.join("missing.txt");
        assert_eq!(
            retry
                .run(|| vfs.read_to_string(&missing))
                .unwrap_err()
                .kind(),
            io::ErrorKind::NotFound
        );
        assert_eq!(
            vfs.pending_faults(),
            1,
            "only the first read ran; the fault at index 1 must still be pending"
        );
    }
}
