//! The §IV-A optimality study: verify that generated circuits need exactly
//! their designed SWAP count.
//!
//! The paper runs OLSQ2 on 400 circuits per architecture. Here every circuit
//! is checked two ways:
//!
//! * the **certificate** check (`qubikos::verify_certificate`) re-derives the
//!   paper's own lower-bound argument with VF2 and DAG reachability and
//!   validates the bundled reference solution — this runs on every instance;
//! * the **exact solver** (`qubikos-exact`, the OLSQ2 substitute) additionally
//!   searches for a cheaper routing on instances small enough for exhaustive
//!   search, providing a fully independent confirmation.

use qubikos::{generate_suite, verify_certificate, SuiteConfig};
use qubikos_arch::DeviceKind;
use qubikos_exact::{ExactConfig, ExactSolver};
use serde::{Deserialize, Serialize};

/// Configuration of the optimality study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimalityConfig {
    /// Devices to study (the paper uses Aspen-4 and the 3×3 grid).
    pub devices: Vec<DeviceKind>,
    /// Suite configuration per device.
    pub suite: SuiteConfig,
    /// Exact-solver budget; instances whose search exceeds it are still
    /// certificate-checked but counted as "not exhaustively confirmed".
    pub exact: ExactConfig,
    /// Only run the exact solver on instances with at most this designed SWAP
    /// count (its runtime grows exponentially with the count).
    pub exact_swap_limit: usize,
}

impl OptimalityConfig {
    /// The paper's configuration (400 circuits per device) — slow.
    pub fn paper() -> Self {
        OptimalityConfig {
            devices: vec![DeviceKind::Aspen4, DeviceKind::Grid3x3],
            suite: SuiteConfig::paper_optimality_study(),
            exact: ExactConfig::default(),
            exact_swap_limit: 2,
        }
    }

    /// A scaled-down configuration preserving the experiment's shape.
    pub fn quick() -> Self {
        let mut config = Self::paper();
        config.suite = config.suite.with_circuits_per_count(5);
        config
    }

    /// The CI smoke configuration: the smallest run that still exercises the
    /// generator, the certificate checker, and the exhaustive exact solver on
    /// every designed SWAP count. Nightly CI runs this to catch performance
    /// and correctness regressions in the hot paths; it must stay fast enough
    /// to finish in well under a minute in release mode.
    pub fn smoke() -> Self {
        OptimalityConfig {
            devices: vec![DeviceKind::Grid3x3],
            suite: SuiteConfig {
                swap_counts: vec![1, 2, 3],
                circuits_per_count: 2,
                two_qubit_gates: 20,
                base_seed: 2025,
            },
            exact: ExactConfig::default(),
            exact_swap_limit: 3,
        }
    }
}

/// Aggregate outcome of the optimality study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptimalityReport {
    /// Total circuits generated.
    pub circuits: usize,
    /// Circuits whose optimality certificate verified.
    pub certified: usize,
    /// Circuits additionally confirmed optimal by the exhaustive solver.
    pub exactly_confirmed: usize,
    /// Circuits where the exhaustive solver was attempted but hit its budget.
    pub exact_budget_exceeded: usize,
    /// Circuits where any check failed (must be zero).
    pub failures: usize,
}

/// Runs the optimality study.
pub fn run_optimality_study(config: &OptimalityConfig) -> OptimalityReport {
    let solver = ExactSolver::new(config.exact);
    let mut report = OptimalityReport {
        circuits: 0,
        certified: 0,
        exactly_confirmed: 0,
        exact_budget_exceeded: 0,
        failures: 0,
    };
    for &device in &config.devices {
        let arch = device.build();
        let suite = generate_suite(&arch, &config.suite).expect("suite generation succeeds");
        for point in &suite {
            report.circuits += 1;
            if verify_certificate(&point.benchmark, &arch).is_ok() {
                report.certified += 1;
            } else {
                report.failures += 1;
                continue;
            }
            if point.swap_count <= config.exact_swap_limit {
                let result = solver.solve(point.benchmark.circuit(), &arch);
                match result.optimal_swaps {
                    Some(optimal) if result.proven => {
                        if optimal == point.benchmark.optimal_swaps() {
                            report.exactly_confirmed += 1;
                        } else {
                            report.failures += 1;
                        }
                    }
                    _ => report.exact_budget_exceeded += 1,
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_study_confirms_optimality() {
        let config = OptimalityConfig {
            devices: vec![DeviceKind::Grid3x3],
            suite: SuiteConfig {
                swap_counts: vec![1, 2],
                circuits_per_count: 2,
                two_qubit_gates: 14,
                base_seed: 13,
            },
            exact: ExactConfig {
                max_swaps: 3,
                node_budget: 10_000_000,
            },
            exact_swap_limit: 1,
        };
        let report = run_optimality_study(&config);
        assert_eq!(report.circuits, 4);
        assert_eq!(report.certified, 4);
        assert_eq!(report.failures, 0);
        // The SWAP-count-1 instances were within the exact limit.
        assert!(report.exactly_confirmed + report.exact_budget_exceeded >= 1);
    }

    #[test]
    fn configs_have_expected_shape() {
        let paper = OptimalityConfig::paper();
        assert_eq!(paper.suite.circuits_per_count, 100);
        assert_eq!(paper.devices.len(), 2);
        let quick = OptimalityConfig::quick();
        assert_eq!(quick.suite.circuits_per_count, 5);
        let smoke = OptimalityConfig::smoke();
        assert!(smoke.suite.total_circuits() <= 10);
        assert_eq!(smoke.devices, vec![DeviceKind::Grid3x3]);
    }

    #[test]
    fn smoke_study_passes_cleanly() {
        let report = run_optimality_study(&OptimalityConfig::smoke());
        assert_eq!(report.failures, 0);
        assert_eq!(report.certified, report.circuits);
        // The smoke limit covers every designed SWAP count, so every circuit
        // must also be exhaustively confirmed, not just certificate-checked.
        assert_eq!(report.exactly_confirmed, report.circuits);
    }
}
