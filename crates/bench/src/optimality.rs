//! The §IV-A optimality study: verify that generated circuits need exactly
//! their designed SWAP count.
//!
//! The paper runs OLSQ2 on 400 circuits per architecture. Here every circuit
//! is checked two ways:
//!
//! * the **certificate** check (`qubikos::verify_certificate`) re-derives the
//!   paper's own lower-bound argument with VF2 and DAG reachability and
//!   validates the bundled reference solution — this runs on every instance;
//! * the **exact solver** (`qubikos-exact`, the OLSQ2 substitute) additionally
//!   searches for a cheaper routing on instances small enough for exhaustive
//!   search, providing a fully independent confirmation.
//!
//! Both checks are embarrassingly parallel and their runtimes are wildly
//! skewed (an exhaustive SWAP-3 search costs orders of magnitude more than a
//! certificate check), so the study runs on the [`qubikos_engine`]
//! work-stealing executor: one job per circuit, one exact solver per worker,
//! and a report that is identical for any thread count.
//!
//! The report also aggregates the exact solver's per-`k` node counts and
//! wall-clock so the study output shows where the search budget goes — the
//! instrumentation behind raising `exact_swap_limit` from 2 to 3 when the
//! solver core was rebuilt.

use crate::store::{StoreError, SuiteStore};
use qubikos::{generate_suite, verify_certificate, GenerateError, SuiteConfig};
use qubikos_arch::{Architecture, DeviceKind};
use qubikos_engine::{Engine, JobDeadline, JobKey, NullSink, ProgressSink, AUTO_THREADS};
use qubikos_exact::{ExactConfig, ExactSolver};
use serde::{Deserialize, Serialize};

/// Configuration of the optimality study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimalityConfig {
    /// Devices to study (the paper uses Aspen-4 and the 3×3 grid).
    pub devices: Vec<DeviceKind>,
    /// Suite configuration per device.
    pub suite: SuiteConfig,
    /// Exact-solver budget; instances whose search exceeds it are still
    /// certificate-checked but counted as "not exhaustively confirmed".
    pub exact: ExactConfig,
    /// Only run the exact solver on instances with at most this designed SWAP
    /// count (its runtime grows exponentially with the count).
    pub exact_swap_limit: usize,
    /// Per-circuit wall-clock budget for the verification job, in
    /// microseconds; `None` means unbounded. A circuit whose exact search
    /// outlives the budget degrades to [`OptimalityReport::deadline_exceeded`]
    /// (certified but not exhaustively confirmed) instead of stalling the
    /// run. **Note:** a deadline makes verdicts timing-dependent, so the
    /// report is no longer bit-identical across machines or thread counts.
    pub exact_deadline_micros: Option<u64>,
    /// Number of worker threads; [`AUTO_THREADS`] (0) uses every available
    /// core. The report is identical for any value (when no deadline is set).
    pub threads: usize,
}

impl OptimalityConfig {
    /// The paper's configuration (400 circuits per device) — slow.
    ///
    /// `exact_swap_limit` is 3: the rebuilt search core (in-place do/undo
    /// state, transposition table, SWAP canonicalization, packing bound)
    /// decides SWAP-3 instances within the same budget the naive DFS needed
    /// for SWAP-2, so two thirds of the designed SWAP counts are confirmed
    /// by independent search instead of one third.
    pub fn paper() -> Self {
        OptimalityConfig {
            devices: vec![DeviceKind::Aspen4, DeviceKind::Grid3x3],
            suite: SuiteConfig::paper_optimality_study(),
            exact: ExactConfig::default(),
            exact_swap_limit: 3,
            exact_deadline_micros: None,
            threads: AUTO_THREADS,
        }
    }

    /// A scaled-down configuration preserving the experiment's shape.
    pub fn quick() -> Self {
        let mut config = Self::paper();
        config.suite = config.suite.with_circuits_per_count(5);
        config
    }

    /// The CI smoke configuration: the smallest run that still exercises the
    /// generator, the certificate checker, and the exhaustive exact solver on
    /// every designed SWAP count. Nightly CI runs this to catch performance
    /// and correctness regressions in the hot paths; it must stay fast enough
    /// to finish in well under a minute in release mode.
    pub fn smoke() -> Self {
        OptimalityConfig {
            devices: vec![DeviceKind::Grid3x3],
            suite: SuiteConfig {
                swap_counts: vec![1, 2, 3],
                circuits_per_count: 2,
                two_qubit_gates: 20,
                base_seed: 2025,
            },
            exact: ExactConfig::default(),
            exact_swap_limit: 3,
            exact_deadline_micros: None,
            threads: AUTO_THREADS,
        }
    }

    /// Returns the configuration with an explicit thread count
    /// ([`AUTO_THREADS`] = all available cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns the configuration with a per-circuit wall-clock budget for
    /// the verification jobs (see
    /// [`exact_deadline_micros`](Self::exact_deadline_micros)).
    pub fn with_exact_deadline(mut self, limit: std::time::Duration) -> Self {
        self.exact_deadline_micros = Some(limit.as_micros().min(u64::MAX as u128) as u64);
        self
    }

    /// The configured per-circuit deadline as a [`std::time::Duration`].
    pub fn exact_deadline(&self) -> Option<std::time::Duration> {
        self.exact_deadline_micros
            .map(std::time::Duration::from_micros)
    }
}

/// Exact-solver node counts aggregated over one queried SWAP budget `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExactNodesAtK {
    /// The queried SWAP budget.
    pub swaps: usize,
    /// Number of feasibility queries run at this budget.
    pub queries: usize,
    /// Total search nodes expanded at this budget.
    pub nodes: u64,
}

/// Aggregate outcome of the optimality study.
///
/// `exact_wall_micros` is excluded from equality: the report is otherwise
/// bit-identical across thread counts (and asserted so in tests), but
/// wall-clock never is.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptimalityReport {
    /// Total circuits generated.
    pub circuits: usize,
    /// Circuits whose optimality certificate verified.
    pub certified: usize,
    /// Circuits additionally confirmed optimal by the exhaustive solver.
    pub exactly_confirmed: usize,
    /// Circuits where the exhaustive solver was attempted but hit its budget.
    pub exact_budget_exceeded: usize,
    /// Circuits whose verification job outran its wall-clock deadline
    /// ([`OptimalityConfig::exact_deadline_micros`]); the certificate still
    /// held, only the independent exhaustive confirmation was cut short.
    /// Always zero when no deadline is configured.
    pub deadline_exceeded: usize,
    /// Circuits where any check failed (must be zero).
    pub failures: usize,
    /// Total exact-solver search nodes across all circuits.
    pub exact_nodes: u64,
    /// Exact-solver node counts broken down by queried SWAP budget,
    /// ascending in `swaps` — shows where the search budget goes.
    pub exact_nodes_by_k: Vec<ExactNodesAtK>,
    /// Total exact-solver wall-clock in microseconds (summed over jobs, so
    /// it exceeds elapsed time when running multi-threaded).
    pub exact_wall_micros: u64,
}

impl PartialEq for OptimalityReport {
    fn eq(&self, other: &Self) -> bool {
        self.circuits == other.circuits
            && self.certified == other.certified
            && self.exactly_confirmed == other.exactly_confirmed
            && self.exact_budget_exceeded == other.exact_budget_exceeded
            && self.deadline_exceeded == other.deadline_exceeded
            && self.failures == other.failures
            && self.exact_nodes == other.exact_nodes
            && self.exact_nodes_by_k == other.exact_nodes_by_k
    }
}

/// Per-circuit outcome of the two verification stages, produced by one
/// engine job and folded into the report in job order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CircuitVerdict {
    /// Certificate check failed; the exact solver was not consulted.
    CertificateFailed,
    /// Certificate held; the instance was above the exact-solver SWAP limit.
    CertifiedOnly,
    /// Certificate held and the exhaustive search confirmed the optimum.
    ExactlyConfirmed,
    /// Certificate held but the exhaustive search found a different optimum.
    ExactMismatch,
    /// Certificate held; the exhaustive search exceeded its budget.
    ExactBudgetExceeded,
    /// Certificate held; the verification job outran its wall-clock
    /// deadline before the exhaustive search finished.
    DeadlineExceeded,
}

impl CircuitVerdict {
    /// Stable name used by the result cache.
    fn name(self) -> &'static str {
        match self {
            CircuitVerdict::CertificateFailed => "certificate-failed",
            CircuitVerdict::CertifiedOnly => "certified-only",
            CircuitVerdict::ExactlyConfirmed => "exactly-confirmed",
            CircuitVerdict::ExactMismatch => "exact-mismatch",
            CircuitVerdict::ExactBudgetExceeded => "exact-budget-exceeded",
            CircuitVerdict::DeadlineExceeded => "deadline-exceeded",
        }
    }

    /// Inverse of [`name`](Self::name); `None` for unknown (corrupt or
    /// future-format) cache entries, which then read as cache misses.
    fn parse(name: &str) -> Option<Self> {
        match name {
            "certificate-failed" => Some(CircuitVerdict::CertificateFailed),
            "certified-only" => Some(CircuitVerdict::CertifiedOnly),
            "exactly-confirmed" => Some(CircuitVerdict::ExactlyConfirmed),
            "exact-mismatch" => Some(CircuitVerdict::ExactMismatch),
            "exact-budget-exceeded" => Some(CircuitVerdict::ExactBudgetExceeded),
            "deadline-exceeded" => Some(CircuitVerdict::DeadlineExceeded),
            _ => None,
        }
    }
}

/// One engine job's result: the verdict plus the exact solver's per-query
/// statistics (empty when the solver was not consulted).
#[derive(Debug, Clone)]
struct PointOutcome {
    verdict: CircuitVerdict,
    /// `(k, nodes)` per feasibility query, in deepening order.
    exact_queries: Vec<(usize, u64)>,
    exact_wall_micros: u64,
}

/// Runs the optimality study.
///
/// # Errors
///
/// Propagates [`GenerateError`] on suite misconfiguration instead of
/// panicking.
pub fn run_optimality_study(config: &OptimalityConfig) -> Result<OptimalityReport, GenerateError> {
    run_optimality_study_with_sink(config, &NullSink)
}

/// [`run_optimality_study`] with a caller-supplied progress/metrics sink.
///
/// # Errors
///
/// As [`run_optimality_study`].
pub fn run_optimality_study_with_sink(
    config: &OptimalityConfig,
    sink: &dyn ProgressSink,
) -> Result<OptimalityReport, GenerateError> {
    // Generate all suites first (generation is cheap and sequential so the
    // suites stay identical to the sequential study), then verify every
    // circuit of every device as one flat worklist.
    let suites: Vec<(Architecture, Vec<qubikos::ExperimentPoint>)> = config
        .devices
        .iter()
        .map(|&device| {
            let arch = device.build();
            let suite = generate_suite(&arch, &config.suite)?;
            Ok((arch, suite))
        })
        .collect::<Result<_, GenerateError>>()?;
    let jobs: Vec<(&Architecture, &qubikos::ExperimentPoint)> = suites
        .iter()
        .flat_map(|(arch, suite)| suite.iter().map(move |point| (arch, point)))
        .collect();

    let mut engine = Engine::new(config.threads).with_base_seed(config.suite.base_seed);
    if let Some(limit) = config.exact_deadline() {
        engine = engine.with_job_deadline(limit);
    }
    let outcomes = engine
        .run_values(
            &jobs,
            |_worker| ExactSolver::new(config.exact),
            |solver, ctx, &(arch, point)| verify_point(solver, config, arch, point, ctx.deadline),
            sink,
        )
        .unwrap_or_else(|error| panic!("optimality study aborted: {error}"));

    Ok(fold_outcomes(&outcomes))
}

/// Incremental accumulator behind the study report. Every field is an
/// integer sum (or count keyed by queried SWAP budget), so the fold is
/// **exactly associative**: outcomes folded shard by shard finish to the
/// same report as a single pass, in any grouping. The per-`k` breakdown is
/// sorted only at [`finish`](Self::finish), matching the historical
/// one-shot fold.
struct OptimalityFold {
    report: OptimalityReport,
}

impl OptimalityFold {
    fn new() -> Self {
        OptimalityFold {
            report: OptimalityReport {
                circuits: 0,
                certified: 0,
                exactly_confirmed: 0,
                exact_budget_exceeded: 0,
                deadline_exceeded: 0,
                failures: 0,
                exact_nodes: 0,
                exact_nodes_by_k: Vec::new(),
                exact_wall_micros: 0,
            },
        }
    }

    fn add(&mut self, outcome: &PointOutcome) {
        let report = &mut self.report;
        report.circuits += 1;
        match outcome.verdict {
            CircuitVerdict::CertificateFailed => report.failures += 1,
            CircuitVerdict::CertifiedOnly => report.certified += 1,
            CircuitVerdict::ExactlyConfirmed => {
                report.certified += 1;
                report.exactly_confirmed += 1;
            }
            CircuitVerdict::ExactMismatch => {
                report.certified += 1;
                report.failures += 1;
            }
            CircuitVerdict::ExactBudgetExceeded => {
                report.certified += 1;
                report.exact_budget_exceeded += 1;
            }
            CircuitVerdict::DeadlineExceeded => {
                report.certified += 1;
                report.deadline_exceeded += 1;
            }
        }
        report.exact_wall_micros += outcome.exact_wall_micros;
        for &(swaps, nodes) in &outcome.exact_queries {
            report.exact_nodes += nodes;
            match report
                .exact_nodes_by_k
                .iter_mut()
                .find(|entry| entry.swaps == swaps)
            {
                Some(entry) => {
                    entry.queries += 1;
                    entry.nodes += nodes;
                }
                None => report.exact_nodes_by_k.push(ExactNodesAtK {
                    swaps,
                    queries: 1,
                    nodes,
                }),
            }
        }
    }

    fn finish(mut self) -> OptimalityReport {
        self.report
            .exact_nodes_by_k
            .sort_by_key(|entry| entry.swaps);
        self.report
    }
}

/// Folds per-circuit outcomes (in job order) into the aggregate report.
fn fold_outcomes(outcomes: &[PointOutcome]) -> OptimalityReport {
    let mut fold = OptimalityFold::new();
    for outcome in outcomes {
        fold.add(outcome);
    }
    fold.finish()
}

/// One cached verification outcome: the `results/optimality/<hash>.json`
/// payload of the suite store. The exact-solver parameters ride along so an
/// entry produced under a different budget or SWAP limit — which could have
/// reached a different verdict — reads as a cache miss.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CachedVerification {
    /// Content hash of the verified circuit's QASM.
    pub circuit_hash: String,
    /// `ExactConfig::max_swaps` the entry was produced under.
    pub max_swaps: usize,
    /// `ExactConfig::node_budget` the entry was produced under.
    pub node_budget: u64,
    /// `exact_swap_limit` the entry was produced under.
    pub exact_swap_limit: usize,
    /// The verdict, as a stable name.
    pub verdict: String,
    /// `(k, nodes)` per exact-solver feasibility query, in deepening order.
    pub queries: Vec<(usize, u64)>,
    /// Exact-solver wall-clock of the original (uncached) verification.
    pub wall_micros: u64,
}

/// Result of a suite-backed optimality run: the report plus how much work
/// the cache saved.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteOptimalityOutcome {
    /// The study report (node counts identical to the in-memory study on
    /// the same suite; wall-clock of cached circuits is the recorded
    /// original, not this run's).
    pub report: OptimalityReport,
    /// Circuits actually verified in this run.
    pub verified: usize,
    /// Circuits answered from the result cache.
    pub cache_hits: usize,
    /// Shards processed this run.
    pub shards: usize,
    /// Shards skipped because their manifest or an instance file was
    /// persistently corrupt; the offending file was moved to the store's
    /// `quarantine/` directory and the report covers the remaining shards.
    pub shards_quarantined: usize,
    /// Whether the whole corpus was covered (false when the run was
    /// truncated by `stop_after_shards` — the report then covers a prefix).
    pub complete: bool,
}

/// Runs the optimality verification over a stored suite, reading and
/// writing the store's `results/optimality/` cache. The suite and device
/// come from the store's root index; `config.devices` and `config.suite`
/// are not consulted. As with the suite evaluation, the run streams shard
/// by shard: at most one shard of circuits is ever materialized, and only
/// when at least one of its circuits misses the cache.
///
/// # Errors
///
/// Propagates [`StoreError`] from loading a shard or writing cache
/// entries.
pub fn run_suite_optimality(
    store: &SuiteStore,
    config: &OptimalityConfig,
) -> Result<SuiteOptimalityOutcome, StoreError> {
    run_suite_optimality_with_sink(store, config, &NullSink)
}

/// [`run_suite_optimality`] with a caller-supplied progress/metrics sink.
/// The sink only sees the circuits that are actually verified (cache
/// misses), one engine worklist per shard with misses.
///
/// # Errors
///
/// As [`run_suite_optimality`].
pub fn run_suite_optimality_with_sink(
    store: &SuiteStore,
    config: &OptimalityConfig,
    sink: &dyn ProgressSink,
) -> Result<SuiteOptimalityOutcome, StoreError> {
    run_suite_optimality_partial(store, config, None, sink)
}

/// The streaming core of the suite-backed optimality run: processes shards
/// in order, folding each shard's verdicts into the report accumulator
/// before the next shard is touched, so memory stays bounded by one shard
/// plus the fold state.
///
/// `stop_after_shards` truncates the run after that many shards; verdicts
/// are banked in the content-addressed cache as they are produced, so a
/// rerun answers the already-processed shards entirely from cache — resume
/// at shard granularity falls out of the cache semantics.
///
/// A shard whose manifest or instance files are *persistently* corrupt
/// (reads are retried first) is quarantined and skipped rather than failing
/// the run: the offending file moves to `quarantine/`, the skip is counted
/// in [`SuiteOptimalityOutcome::shards_quarantined`], and the report covers
/// the surviving shards. Plain I/O errors still propagate.
///
/// # Errors
///
/// As [`run_suite_optimality`].
pub fn run_suite_optimality_partial(
    store: &SuiteStore,
    config: &OptimalityConfig,
    stop_after_shards: Option<usize>,
    sink: &dyn ProgressSink,
) -> Result<SuiteOptimalityOutcome, StoreError> {
    let arch = store.device().build();
    let base_seed = store.config().base_seed;
    let shards = stop_after_shards
        .unwrap_or(usize::MAX)
        .min(store.shard_count());
    let mut fold = OptimalityFold::new();
    let mut verified_total = 0;
    let mut cache_hits = 0;
    let mut shards_quarantined = 0;

    for shard in 0..shards {
        match optimality_shard(store, config, &arch, base_seed, shard, sink) {
            Ok((outcomes, verified, hits)) => {
                for outcome in &outcomes {
                    fold.add(outcome);
                }
                verified_total += verified;
                cache_hits += hits;
            }
            Err(error) if error.is_corruption() => {
                store.quarantine_shard_error(shard, &error);
                shards_quarantined += 1;
            }
            Err(error) => return Err(error),
        }
    }

    Ok(SuiteOptimalityOutcome {
        report: fold.finish(),
        verified: verified_total,
        cache_hits,
        shards,
        shards_quarantined,
        complete: shards == store.shard_count(),
    })
}

/// Verifies one shard: cache lookups, engine verification of the misses,
/// cache writes. Returns the per-circuit outcomes plus the verified/
/// cache-hit counts, so a corrupt shard can be dropped wholesale before
/// anything is folded.
fn optimality_shard(
    store: &SuiteStore,
    config: &OptimalityConfig,
    arch: &Architecture,
    base_seed: u64,
    shard: usize,
    sink: &dyn ProgressSink,
) -> Result<(Vec<PointOutcome>, usize, usize), StoreError> {
    let records = store.shard_records(shard)?;
    let key = |point_index: usize| JobKey::new("optimality", &records[point_index].content_hash);

    // Resolve the cache first: only misses are verified.
    let mut outcomes: Vec<Option<PointOutcome>> = (0..records.len())
        .map(|point_index| {
            let cached: CachedVerification = store.read_cached(&key(point_index))?;
            let compatible = cached.circuit_hash == records[point_index].content_hash
                && cached.max_swaps == config.exact.max_swaps
                && cached.node_budget == config.exact.node_budget
                && cached.exact_swap_limit == config.exact_swap_limit;
            if !compatible {
                return None;
            }
            Some(PointOutcome {
                verdict: CircuitVerdict::parse(&cached.verdict)?,
                exact_queries: cached.queries,
                exact_wall_micros: cached.wall_micros,
            })
        })
        .collect();
    let misses: Vec<usize> = outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| o.is_none())
        .map(|(i, _)| i)
        .collect();

    if !misses.is_empty() {
        // The shard's circuits are only materialized — and only this
        // shard re-verified — when there are misses to work on. Each
        // verdict is persisted from inside its job so an interrupted
        // run resumes where it stopped (`write_cached` is
        // rename-atomic; a kill mid-write costs only that one entry).
        let points = store.load_shard(shard)?;
        let mut engine = Engine::new(config.threads).with_base_seed(base_seed);
        if let Some(limit) = config.exact_deadline() {
            engine = engine.with_job_deadline(limit);
        }
        let fresh: Vec<PointOutcome> = engine
            .run_values(
                &misses,
                |_worker| ExactSolver::new(config.exact),
                |solver, ctx, &point_index| -> Result<PointOutcome, StoreError> {
                    let outcome =
                        verify_point(solver, config, arch, &points[point_index], ctx.deadline);
                    // A deadline-exceeded verdict is a statement about
                    // *this machine's* clock, not about the circuit —
                    // caching it would make a faster rerun inherit the
                    // timeout, so it is recomputed every run instead.
                    if outcome.verdict != CircuitVerdict::DeadlineExceeded {
                        store.write_cached(
                            &key(point_index),
                            &CachedVerification {
                                circuit_hash: records[point_index].content_hash.clone(),
                                max_swaps: config.exact.max_swaps,
                                node_budget: config.exact.node_budget,
                                exact_swap_limit: config.exact_swap_limit,
                                verdict: outcome.verdict.name().to_string(),
                                queries: outcome.exact_queries.clone(),
                                wall_micros: outcome.exact_wall_micros,
                            },
                        )?;
                    }
                    Ok(outcome)
                },
                sink,
            )
            .unwrap_or_else(|error| panic!("optimality study aborted: {error}"))
            .into_iter()
            .collect::<Result<_, _>>()?;

        for (&point_index, outcome) in misses.iter().zip(&fresh) {
            outcomes[point_index] = Some(outcome.clone());
        }
    }

    let resolved: Vec<PointOutcome> = outcomes
        .into_iter()
        .map(|slot| slot.expect("every circuit resolved"))
        .collect();
    let verified = misses.len();
    let hits = records.len() - verified;
    Ok((resolved, verified, hits))
}

/// Verifies one circuit: certificate always, exhaustive exact solver when
/// the designed SWAP count is within the configured limit. `deadline` (from
/// the engine's [`JobDeadline`], when configured) cuts the exhaustive
/// search short so one pathological instance degrades to an unproven
/// verdict instead of stalling the run.
fn verify_point(
    solver: &mut ExactSolver,
    config: &OptimalityConfig,
    arch: &Architecture,
    point: &qubikos::ExperimentPoint,
    deadline: Option<JobDeadline>,
) -> PointOutcome {
    let unsolved = |verdict| PointOutcome {
        verdict,
        exact_queries: Vec::new(),
        exact_wall_micros: 0,
    };
    if verify_certificate(&point.benchmark, arch).is_err() {
        return unsolved(CircuitVerdict::CertificateFailed);
    }
    if point.swap_count > config.exact_swap_limit {
        return unsolved(CircuitVerdict::CertifiedOnly);
    }
    let result = solver.solve_with_deadline(
        point.benchmark.circuit(),
        arch,
        deadline.map(|d| d.expires_at()),
    );
    let verdict = match result.optimal_swaps {
        Some(optimal) if result.proven => {
            if optimal == point.benchmark.optimal_swaps() {
                CircuitVerdict::ExactlyConfirmed
            } else {
                CircuitVerdict::ExactMismatch
            }
        }
        _ if result.deadline_exceeded => CircuitVerdict::DeadlineExceeded,
        _ => CircuitVerdict::ExactBudgetExceeded,
    };
    PointOutcome {
        verdict,
        exact_queries: result.queries.iter().map(|q| (q.swaps, q.nodes)).collect(),
        exact_wall_micros: result.wall_micros,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> OptimalityConfig {
        OptimalityConfig {
            devices: vec![DeviceKind::Grid3x3],
            suite: SuiteConfig {
                swap_counts: vec![1, 2],
                circuits_per_count: 2,
                two_qubit_gates: 14,
                base_seed: 13,
            },
            exact: ExactConfig {
                max_swaps: 3,
                node_budget: 10_000_000,
            },
            exact_swap_limit: 1,
            exact_deadline_micros: None,
            threads: 2,
        }
    }

    #[test]
    fn tiny_study_confirms_optimality() {
        let report = run_optimality_study(&tiny_config()).expect("valid config");
        assert_eq!(report.circuits, 4);
        assert_eq!(report.certified, 4);
        assert_eq!(report.failures, 0);
        // The SWAP-count-1 instances were within the exact limit.
        assert!(report.exactly_confirmed + report.exact_budget_exceeded >= 1);
        // The consulted solver's work is visible in the aggregates.
        assert!(report.exact_nodes > 0);
        assert!(!report.exact_nodes_by_k.is_empty());
        assert_eq!(
            report.exact_nodes,
            report.exact_nodes_by_k.iter().map(|e| e.nodes).sum::<u64>(),
            "per-k breakdown must sum to the total"
        );
    }

    /// The study, previously fully sequential, must produce the identical
    /// report now that it runs on the engine — at any thread count. (The
    /// comparison covers node counts; wall-clock is excluded from `==`.)
    #[test]
    fn reports_identical_across_thread_counts() {
        let reference = run_optimality_study(&tiny_config().with_threads(1)).expect("valid config");
        for threads in [2usize, 8, AUTO_THREADS] {
            let report =
                run_optimality_study(&tiny_config().with_threads(threads)).expect("valid config");
            assert_eq!(report, reference, "report diverged at threads={threads}");
        }
    }

    #[test]
    fn configs_have_expected_shape() {
        let paper = OptimalityConfig::paper();
        assert_eq!(paper.suite.circuits_per_count, 100);
        assert_eq!(paper.devices.len(), 2);
        assert_eq!(paper.threads, AUTO_THREADS);
        // The rebuilt exact core lifts the independent-search coverage from
        // SWAP-2 to SWAP-3.
        assert_eq!(paper.exact_swap_limit, 3);
        let quick = OptimalityConfig::quick();
        assert_eq!(quick.suite.circuits_per_count, 5);
        let smoke = OptimalityConfig::smoke();
        assert!(smoke.suite.total_circuits() <= 10);
        assert_eq!(smoke.devices, vec![DeviceKind::Grid3x3]);
    }

    #[test]
    fn smoke_study_passes_cleanly() {
        let report = run_optimality_study(&OptimalityConfig::smoke()).expect("valid config");
        assert_eq!(report.failures, 0);
        assert_eq!(report.certified, report.circuits);
        // The smoke limit covers every designed SWAP count, so every circuit
        // must also be exhaustively confirmed, not just certificate-checked.
        assert_eq!(report.exactly_confirmed, report.circuits);
        assert_eq!(report.deadline_exceeded, 0, "no deadline configured");
    }

    /// A pathological (here: zero) deadline must degrade exact confirmation
    /// to `deadline_exceeded` — certified, unproven, run completes, zero
    /// failures — instead of stalling or poisoning the study.
    #[test]
    fn zero_deadline_degrades_to_unproven_without_failing() {
        let config = tiny_config().with_exact_deadline(std::time::Duration::ZERO);
        let report = run_optimality_study(&config).expect("valid config");
        // Every circuit still completes its certificate check...
        assert_eq!(report.circuits, 4);
        assert_eq!(report.certified, 4);
        assert_eq!(report.failures, 0);
        // ...and every exact-solver consultation (the SWAP-1 instances, per
        // `exact_swap_limit: 1`) times out instead of confirming.
        assert!(report.deadline_exceeded > 0);
        assert_eq!(report.exactly_confirmed, 0);
    }

    /// A generous deadline must not change the study's outcome.
    #[test]
    fn generous_deadline_matches_unbounded_report() {
        let unbounded = run_optimality_study(&tiny_config()).expect("valid config");
        let config = tiny_config().with_exact_deadline(std::time::Duration::from_secs(3600));
        let bounded = run_optimality_study(&config).expect("valid config");
        assert_eq!(bounded, unbounded);
        assert_eq!(bounded.deadline_exceeded, 0);
    }
}
