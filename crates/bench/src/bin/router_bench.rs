//! Router micro-benchmark smoke for nightly CI.
//!
//! Times every QLS tool on the fixed grid(4,4) workload (the same instance
//! the `routers` criterion bench uses) and writes a `router_timings.json`
//! report, so the routing kernel's performance trajectory is measurable
//! PR-over-PR next to the engine's `engine_timings.json` artifact.
//!
//! ```text
//! router_bench                                # print the timing table
//! router_bench --json router_timings.json    # also export JSON
//! router_bench --samples 25                  # more samples per tool
//! ```

use qubikos::{generate, GeneratorConfig};
use qubikos_arch::devices;
use qubikos_bench::microbench::TimingSamples;
use qubikos_layout::ToolKind;
use serde::Serialize;

/// One tool's timing row in the JSON export (durations in nanoseconds).
#[derive(Debug, Serialize)]
struct RouterTiming {
    tool: String,
    median_ns: u64,
    min_ns: u64,
    max_ns: u64,
    samples: usize,
    /// SWAPs inserted on the workload — pins the quality side so a "speedup"
    /// that silently trades SWAP count for time is visible in the same file.
    swap_count: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = qubikos_bench::microbench::json_path_flag(&args);
    let samples = qubikos_bench::microbench::samples_flag(&args, 15);

    // The same fixed workload as the `route_grid4x4_120g_4swaps` criterion
    // group: a 4-SWAP/120-gate QUBIKOS instance on grid(4,4), seed 9.
    let arch = devices::grid(4, 4);
    let workload =
        generate(&arch, &GeneratorConfig::new(4, 120).with_seed(9)).expect("workload generates");

    let mut rows = Vec::new();
    println!("router timings on grid-4x4 (120 two-qubit gates, designed 4 SWAPs)");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>8}",
        "tool", "median", "min", "max", "swaps"
    );
    for tool in ToolKind::ALL {
        let router = tool.build(7);
        // Warm-up run, also the SWAP-count witness.
        let routed = router.route(workload.circuit(), &arch).expect("fits");
        let times = TimingSamples::collect(samples, || {
            let result = router.route(workload.circuit(), &arch).expect("fits");
            std::hint::black_box(result);
        });
        let row = RouterTiming {
            tool: tool.name().to_string(),
            median_ns: times.median_ns(),
            min_ns: times.min_ns(),
            max_ns: times.max_ns(),
            samples,
            swap_count: routed.swap_count(),
        };
        println!(
            "{:<12} {:>9.3} ms {:>9.3} ms {:>9.3} ms {:>8}",
            row.tool,
            row.median_ns as f64 / 1e6,
            row.min_ns as f64 / 1e6,
            row.max_ns as f64 / 1e6,
            row.swap_count
        );
        rows.push(row);
    }

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&rows).expect("timings serialize");
        std::fs::write(&path, json).expect("timing JSON is writable");
        eprintln!("wrote router timings to {path}");
    }
}
