//! Distance-oracle scaling smoke for nightly CI.
//!
//! Routes a 127-qubit Eagle QUEKO instance and a 433-qubit Osprey QUEKO
//! instance through all four QLS tools on the landmark-backed oracle, and
//! writes an `oracle_timings.json` report pairing per-router wall-clock
//! medians with the oracle's own counters — queries answered, BFS rows
//! recomputed, cache hits, pinned-row hits, landmark bound queries, exact
//! fallbacks, and the landmark index's measured stretch. A routing change
//! that starts thrashing the bounded row cache shows up here as a
//! `rows_computed` jump long before it costs enough wall-clock to fail a
//! timing gate; a landmark-selection regression shows up as a stretch jump.
//!
//! ```text
//! oracle_bench                                # print the table
//! oracle_bench --json oracle_timings.json    # also export JSON
//! oracle_bench --samples 5                   # more samples per route
//! ```

use qubikos::queko::{generate_queko, QuekoConfig};
use qubikos_arch::{devices, Architecture};
use qubikos_bench::microbench::TimingSamples;
use qubikos_circuit::Circuit;
use qubikos_layout::ToolKind;
use serde::Serialize;

/// Sources sampled by the per-device landmark stretch sweep.
const STRETCH_SOURCES: usize = 16;

/// One (device, tool) row in the JSON export (durations in nanoseconds).
#[derive(Debug, Serialize)]
struct OracleTiming {
    device: String,
    qubits: usize,
    tool: String,
    median_ns: u64,
    min_ns: u64,
    max_ns: u64,
    samples: usize,
    /// SWAPs inserted — pins quality next to speed, as in `router_bench`.
    swap_count: usize,
    /// Oracle backend answering this route's distance queries.
    oracle: String,
    /// Distance queries the route issued (from the warm-up route's
    /// [`qubikos_graph::OracleStats::since`] delta).
    queries: u64,
    /// BFS rows recomputed during the route; the thrash indicator.
    rows_computed: u64,
    /// Queries answered from the bounded row cache.
    cache_hits: u64,
    /// Cache hits on rows pinned for the scorer's current gate front.
    pinned_hits: u64,
    /// Approximate bound queries answered by the landmark index.
    landmark_queries: u64,
    /// Candidates bound pruning could not discard (scored exactly).
    exact_fallbacks: u64,
    /// Rows resident after the route — never exceeds `cache_capacity`.
    cached_rows: usize,
    /// The oracle's row-cache bound (0 for the dense backend, which holds
    /// every row by construction).
    cache_capacity: usize,
    /// Worst sampled `upper_bound / exact` of the landmark index over
    /// [`STRETCH_SOURCES`] BFS sources (`None` without a landmark tier,
    /// `1.0` when every sampled upper bound was exact). A device property,
    /// not a route property — identical across this device's rows.
    landmark_stretch: Option<f64>,
}

fn bench_route(
    arch: &Architecture,
    circuit: &Circuit,
    tool: ToolKind,
    samples: usize,
    landmark_stretch: Option<f64>,
) -> OracleTiming {
    let router = tool.build(7);
    // Warm-up run doubles as the SWAP-count and oracle-stats witness.
    let before = arch.oracle_stats();
    let routed = router.route(circuit, arch).expect("fits");
    let delta = arch.oracle_stats().since(&before);
    let times = TimingSamples::collect(samples, || {
        let result = router.route(circuit, arch).expect("fits");
        std::hint::black_box(result);
    });
    let (cached_rows, cache_capacity) = match arch.oracle().row_tier() {
        Some(rows) => (rows.cached_rows(), rows.row_cache_capacity()),
        None => (arch.num_qubits(), 0),
    };
    OracleTiming {
        device: arch.name().to_string(),
        qubits: arch.num_qubits(),
        tool: tool.name().to_string(),
        median_ns: times.median_ns(),
        min_ns: times.min_ns(),
        max_ns: times.max_ns(),
        samples,
        swap_count: routed.swap_count(),
        oracle: arch.oracle_kind().name().to_string(),
        queries: delta.queries,
        rows_computed: delta.rows_computed,
        cache_hits: delta.cache_hits,
        pinned_hits: delta.pinned_hits,
        landmark_queries: delta.landmark_queries,
        exact_fallbacks: delta.exact_fallbacks,
        cached_rows,
        cache_capacity,
        landmark_stretch,
    }
}

/// Measure the landmark stretch once per device, before any routing, so the
/// sweep's own row traffic never contaminates a route's stats delta.
fn device_stretch(arch: &Architecture) -> Option<f64> {
    arch.oracle()
        .landmark()
        .map(|oracle| oracle.measured_stretch(STRETCH_SOURCES))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = qubikos_bench::microbench::json_path_flag(&args);
    let samples = qubikos_bench::microbench::samples_flag(&args, 3);

    let mut rows = Vec::new();
    println!(
        "{:<12} {:<12} {:>10} {:>7} {:>12} {:>8} {:>10} {:>8} {:>8} {:>8} {:>7}",
        "device",
        "tool",
        "median",
        "swaps",
        "queries",
        "rows",
        "hits",
        "pinned",
        "lmq",
        "exact",
        "stretch"
    );

    // Eagle-127 through all four routers: the headline scaling scenario.
    // Density 0.05 keeps the source working set inside the row cache (the
    // cliff sat between 0.05 and 0.08 at 64 slots — see the routing-scale
    // test in `qubikos`), so this row doubles as a thrash tripwire.
    let eagle = devices::eagle127();
    let eagle_stretch = device_stretch(&eagle);
    let queko = generate_queko(&eagle, &QuekoConfig::new(6).with_density(0.05).with_seed(5))
        .expect("generates");
    for tool in ToolKind::ALL {
        rows.push(bench_route(
            &eagle,
            queko.circuit(),
            tool,
            samples,
            eagle_stretch,
        ));
    }

    // Osprey-433 through all four routers: 3.4x the qubits on a row cache
    // that stays sublinear in n², pinning the per-gate-cost claim at depth.
    // Shallow density keeps the (deliberately expensive) A* router
    // affordable; the oracle counters don't depend on instance size.
    let osprey = devices::osprey433();
    let osprey_stretch = device_stretch(&osprey);
    let queko = generate_queko(
        &osprey,
        &QuekoConfig::new(6).with_density(0.01).with_seed(8),
    )
    .expect("generates");
    for tool in ToolKind::ALL {
        rows.push(bench_route(
            &osprey,
            queko.circuit(),
            tool,
            samples,
            osprey_stretch,
        ));
    }

    for row in &rows {
        println!(
            "{:<12} {:<12} {:>7.1} ms {:>7} {:>12} {:>8} {:>10} {:>8} {:>8} {:>8} {:>7}",
            row.device,
            row.tool,
            row.median_ns as f64 / 1e6,
            row.swap_count,
            row.queries,
            row.rows_computed,
            row.cache_hits,
            row.pinned_hits,
            row.landmark_queries,
            row.exact_fallbacks,
            row.landmark_stretch
                .map_or_else(|| "-".to_string(), |s| format!("{s:.2}")),
        );
    }

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&rows).expect("timings serialize");
        std::fs::write(&path, json).expect("timing JSON is writable");
        eprintln!("wrote oracle timings to {path}");
    }
}
