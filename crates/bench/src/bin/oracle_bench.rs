//! Distance-oracle scaling smoke for nightly CI.
//!
//! Routes a 127-qubit Eagle QUEKO instance through all four QLS tools (and a
//! 433-qubit Osprey instance through LightSABRE) on the sparse BFS oracle,
//! and writes an `oracle_timings.json` report pairing per-router wall-clock
//! medians with the oracle's own counters — queries answered, BFS rows
//! recomputed, cache hits, peak resident rows. A routing change that starts
//! thrashing the bounded row cache shows up here as a `rows_computed` jump
//! long before it costs enough wall-clock to fail a timing gate.
//!
//! ```text
//! oracle_bench                                # print the table
//! oracle_bench --json oracle_timings.json    # also export JSON
//! oracle_bench --samples 5                   # more samples per route
//! ```

use qubikos::queko::{generate_queko, QuekoConfig};
use qubikos_arch::{devices, Architecture};
use qubikos_bench::microbench::TimingSamples;
use qubikos_circuit::Circuit;
use qubikos_graph::DistanceOracle;
use qubikos_layout::ToolKind;
use serde::Serialize;

/// One (device, tool) row in the JSON export (durations in nanoseconds).
#[derive(Debug, Serialize)]
struct OracleTiming {
    device: String,
    qubits: usize,
    tool: String,
    median_ns: u64,
    min_ns: u64,
    max_ns: u64,
    samples: usize,
    /// SWAPs inserted — pins quality next to speed, as in `router_bench`.
    swap_count: usize,
    /// Oracle backend answering this route's distance queries.
    oracle: String,
    /// Distance queries the route issued (from the warm-up route's
    /// [`qubikos_graph::OracleStats::since`] delta).
    queries: u64,
    /// BFS rows recomputed during the route; the thrash indicator.
    rows_computed: u64,
    /// Queries answered from the bounded row cache.
    cache_hits: u64,
    /// Rows resident after the route — never exceeds `cache_capacity`.
    cached_rows: usize,
    /// The oracle's row-cache bound (0 for the dense backend, which holds
    /// every row by construction).
    cache_capacity: usize,
}

fn bench_route(
    arch: &Architecture,
    circuit: &Circuit,
    tool: ToolKind,
    samples: usize,
) -> OracleTiming {
    let router = tool.build(7);
    // Warm-up run doubles as the SWAP-count and oracle-stats witness.
    let before = arch.oracle_stats();
    let routed = router.route(circuit, arch).expect("fits");
    let delta = arch.oracle_stats().since(&before);
    let times = TimingSamples::collect(samples, || {
        let result = router.route(circuit, arch).expect("fits");
        std::hint::black_box(result);
    });
    let (cached_rows, cache_capacity) = match arch.oracle() {
        DistanceOracle::Sparse(oracle) => (oracle.cached_rows(), oracle.row_cache_capacity()),
        DistanceOracle::Dense(_) => (arch.num_qubits(), 0),
    };
    OracleTiming {
        device: arch.name().to_string(),
        qubits: arch.num_qubits(),
        tool: tool.name().to_string(),
        median_ns: times.median_ns(),
        min_ns: times.min_ns(),
        max_ns: times.max_ns(),
        samples,
        swap_count: routed.swap_count(),
        oracle: arch.oracle_kind().name().to_string(),
        queries: delta.queries,
        rows_computed: delta.rows_computed,
        cache_hits: delta.cache_hits,
        cached_rows,
        cache_capacity,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = qubikos_bench::microbench::json_path_flag(&args);
    let samples = qubikos_bench::microbench::samples_flag(&args, 3);

    let mut rows = Vec::new();
    println!(
        "{:<12} {:<12} {:>10} {:>7} {:>12} {:>10} {:>12} {:>7}",
        "device", "tool", "median", "swaps", "queries", "rows", "hits", "cached"
    );

    // Eagle-127 through all four routers: the headline scaling scenario.
    // Density 0.05 keeps the source working set inside the row cache (the
    // cliff sits between 0.05 and 0.08 at 64 slots — see the routing-scale
    // test in `qubikos`), so this row doubles as a thrash tripwire.
    let eagle = devices::eagle127();
    let queko = generate_queko(&eagle, &QuekoConfig::new(6).with_density(0.05).with_seed(5))
        .expect("generates");
    for tool in ToolKind::ALL {
        rows.push(bench_route(&eagle, queko.circuit(), tool, samples));
    }

    // Osprey-433 through LightSABRE only: 3.4x the qubits on the same
    // 64-row cache, pinning the memory-sublinear claim at depth.
    let osprey = devices::osprey433();
    let queko = generate_queko(
        &osprey,
        &QuekoConfig::new(6).with_density(0.01).with_seed(8),
    )
    .expect("generates");
    rows.push(bench_route(
        &osprey,
        queko.circuit(),
        ToolKind::LightSabre,
        samples,
    ));

    for row in &rows {
        println!(
            "{:<12} {:<12} {:>7.1} ms {:>7} {:>12} {:>10} {:>12} {:>7}",
            row.device,
            row.tool,
            row.median_ns as f64 / 1e6,
            row.swap_count,
            row.queries,
            row.rows_computed,
            row.cache_hits,
            row.cached_rows
        );
    }

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&rows).expect("timings serialize");
        std::fs::write(&path, json).expect("timing JSON is writable");
        eprintln!("wrote oracle timings to {path}");
    }
}
