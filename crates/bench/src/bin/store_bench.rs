//! Sharded-store throughput and memory smoke for nightly CI.
//!
//! Exports the same Grid-3x3 corpus at several shard sizes, then drives the
//! full streaming pipeline over each — `verify`, a cold `eval`, and the
//! `analytics` fold — and writes a `store_timings.json` report pairing
//! per-stage wall-clock with the two memory witnesses: the store's
//! shard-residency high-water mark (the flat-memory claim: at most one
//! shard of circuits resident at a time, at every shard count) and the
//! process's peak RSS from `/proc/self/status`. A store change that starts
//! holding whole corpora in memory shows up as a `residency_peak` jump at
//! high shard counts long before a million-instance corpus would OOM; a
//! serialization regression shows up as an `export_ms`/`verify_ms` jump.
//!
//! ```text
//! store_bench                              # print the table
//! store_bench --json store_timings.json    # also export JSON
//! store_bench --threads 4                  # explicit worker count
//! ```
//!
//! Peak RSS is process-wide and monotone across rows, so only the first
//! row's value is a clean per-corpus ceiling; later rows pin the claim
//! that *no* shard size inflates it further.

use qubikos_arch::DeviceKind;
use qubikos_bench::analytics::{run_suite_analytics, AnalyticsConfig};
use qubikos_bench::evaluation::{run_suite_evaluation, SuiteEvalConfig};
use qubikos_bench::microbench::peak_rss_kb;
use qubikos_bench::store::{ExportOptions, SuiteStore};
use qubikos_bench::EvaluationConfig;
use qubikos_engine::{threads_from_args, NullSink, AUTO_THREADS};
use serde::Serialize;
use std::time::Instant;

/// One shard-size row in the JSON export (durations in milliseconds).
#[derive(Debug, Serialize)]
struct StoreTiming {
    device: String,
    instances: usize,
    shard_size: usize,
    shards: usize,
    threads: usize,
    export_ms: f64,
    verify_ms: f64,
    eval_ms: f64,
    analytics_ms: f64,
    /// Most shards of circuits simultaneously resident across the whole
    /// row — the streaming claim is that this never exceeds 1.
    residency_peak: usize,
    /// Process peak RSS (kB) after this row; 0 when procfs is unavailable.
    peak_rss_kb: u64,
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_nanos() as f64 / 1e6
}

fn bench_shard_size(root: &std::path::Path, shard_size: usize, threads: usize) -> StoreTiming {
    let device = DeviceKind::Grid3x3;
    let suite = EvaluationConfig::quick(device).suite;
    let options = ExportOptions::default().with_shard_size(shard_size);

    let start = Instant::now();
    let outcome =
        SuiteStore::export_with_options(root, device, &suite, &options, threads, &NullSink)
            .expect("export succeeds");
    let export_ms = ms(start);
    let store = outcome.store.expect("uninterrupted export completes");

    let start = Instant::now();
    let report = store
        .verify_streaming(threads, None, &NullSink)
        .expect("verify runs");
    assert!(report.failures.is_empty(), "fresh export verifies clean");
    let verify_ms = ms(start);

    store.reset_residency_peak();
    let start = Instant::now();
    let eval = run_suite_evaluation(&store, &SuiteEvalConfig::default().with_threads(threads))
        .expect("evaluation runs");
    let eval_ms = ms(start);
    assert_eq!(eval.cache_hits, 0, "cold store evaluates everything fresh");

    let start = Instant::now();
    let analytics = run_suite_analytics(&store, &AnalyticsConfig::default().with_threads(threads))
        .expect("analytics runs");
    let analytics_ms = ms(start);
    assert_eq!(
        analytics.summary.fully_covered as usize,
        store.total_instances(),
        "the eval pass banked a cache entry for every (tool, circuit) pair"
    );

    StoreTiming {
        device: device.name().to_string(),
        instances: store.total_instances(),
        shard_size,
        shards: store.shard_count(),
        threads,
        export_ms,
        verify_ms,
        eval_ms,
        analytics_ms,
        residency_peak: store.residency_peak(),
        peak_rss_kb: peak_rss_kb(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = qubikos_bench::microbench::json_path_flag(&args);
    let threads = threads_from_args(&args).unwrap_or(AUTO_THREADS);

    let scratch = std::env::temp_dir().join(format!("qubikos-store-bench-{}", std::process::id()));
    let mut rows = Vec::new();
    // Same corpus at one-shard, few-shard, and shard-per-instance layouts.
    for shard_size in [usize::MAX, 4, 2, 1] {
        let total = EvaluationConfig::quick(DeviceKind::Grid3x3)
            .suite
            .total_circuits();
        let shard_size = shard_size.min(total);
        let root = scratch.join(format!("shards-{shard_size}"));
        rows.push(bench_shard_size(&root, shard_size, threads));
    }
    let _ = std::fs::remove_dir_all(&scratch);

    println!(
        "{:<10} {:>10} {:>11} {:>7} {:>10} {:>10} {:>10} {:>13} {:>10} {:>10}",
        "device",
        "instances",
        "shard_size",
        "shards",
        "export",
        "verify",
        "eval",
        "analytics",
        "resident",
        "rss_kb"
    );
    for row in &rows {
        assert!(
            row.residency_peak <= 1,
            "streaming pipeline kept {} shards resident",
            row.residency_peak
        );
        println!(
            "{:<10} {:>10} {:>11} {:>7} {:>7.1} ms {:>7.1} ms {:>7.1} ms {:>10.1} ms {:>10} {:>10}",
            row.device,
            row.instances,
            row.shard_size,
            row.shards,
            row.export_ms,
            row.verify_ms,
            row.eval_ms,
            row.analytics_ms,
            row.residency_peak,
            row.peak_rss_kb
        );
    }

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&rows).expect("timings serialize");
        std::fs::write(&path, json).expect("timing JSON is writable");
        eprintln!("wrote store timings to {path}");
    }
}
