//! The unified QUBIKOS CLI: one entry point over every pipeline plus the
//! persistent suite store.
//!
//! ```text
//! qubikos suite export --arch aspen4 --out corpus      # persist a suite
//! qubikos suite verify --suite corpus                  # hashes + round trip
//! qubikos eval --suite corpus                          # cached evaluation
//! qubikos eval --suite corpus --require-cached         # assert warm cache
//! qubikos eval --arch aspen4                           # in-memory pipeline
//! qubikos optimality --smoke                           # §IV-A study
//! qubikos case-study --decay 0.5                       # §IV-C study
//! qubikos ablations --threads 8                        # design ablations
//! ```
//!
//! The single-purpose bins (`tool_evaluation`, `optimality_study`,
//! `sabre_case_study`, `ablations`, `export_suite`) remain and run the same
//! command implementations from [`qubikos_bench::cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    qubikos_bench::cli::exit_with(qubikos_bench::cli::dispatch(&args));
}
