//! Exact-solver micro-benchmark smoke for nightly CI.
//!
//! Times the rebuilt search core against the pre-refactor reference DFS on
//! the fixed Grid3x3 smoke-style workload (SWAP counts 1–3, the same shape
//! as `OptimalityConfig::smoke()` and the `exact_solver` criterion groups)
//! and writes an `exact_timings.json` report, so the exact core's
//! performance trajectory is measurable PR-over-PR next to
//! `router_timings.json` and `engine_timings.json`.
//!
//! Node counts ride along with the timings: a "speedup" that silently
//! trades search completeness for time — or a regression that quietly blows
//! the node budget back up — is visible in the same file.
//!
//! ```text
//! exact_bench                               # print the timing table
//! exact_bench --json exact_timings.json    # also export JSON
//! exact_bench --samples 10                 # more samples per instance
//! ```

use qubikos::{generate, GeneratorConfig};
use qubikos_arch::DeviceKind;
use qubikos_bench::microbench::TimingSamples;
use qubikos_exact::solver::reference::ReferenceSolver;
use qubikos_exact::{ExactConfig, ExactSolver};
use serde::Serialize;

/// One instance's timing row in the JSON export (durations in nanoseconds).
#[derive(Debug, Serialize)]
struct ExactTiming {
    device: String,
    designed_swaps: usize,
    seed: u64,
    optimal_swaps: usize,
    proven: bool,
    optimized_median_ns: u64,
    optimized_nodes: u64,
    reference_median_ns: u64,
    reference_nodes: u64,
    /// reference / optimized wall-clock.
    speedup: f64,
    /// reference / optimized nodes explored.
    node_ratio: f64,
    samples: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = qubikos_bench::microbench::json_path_flag(&args);
    let samples = qubikos_bench::microbench::samples_flag(&args, 5);

    // The same fixed workload shape as the `exact_solver_grid3x3` criterion
    // group: 16-gate QUBIKOS instances on Grid3x3, designed SWAPs 1–3.
    let device = DeviceKind::Grid3x3;
    let arch = device.build();
    let config = ExactConfig::default();
    let optimized = ExactSolver::new(config);
    let reference = ReferenceSolver::new(config);

    let mut rows = Vec::new();
    println!("exact solver timings on {} (16 two-qubit gates)", arch);
    println!(
        "{:<6} {:>6} {:>14} {:>14} {:>9} {:>12} {:>12} {:>8}",
        "swaps", "seed", "optimized", "reference", "speedup", "opt nodes", "ref nodes", "ratio"
    );
    for designed_swaps in [1usize, 2, 3] {
        let seed = 9u64;
        let bench = generate(
            &arch,
            &GeneratorConfig::new(designed_swaps, 16).with_seed(seed),
        )
        .expect("workload generates");
        let circuit = bench.circuit();

        // Warm-up runs double as the node-count and answer witnesses.
        let optimized_result = optimized.solve(circuit, &arch);
        let reference_result = reference.solve(circuit, &arch);
        assert_eq!(
            optimized_result.optimal_swaps, reference_result.optimal_swaps,
            "solvers disagree on the workload optimum"
        );
        assert_eq!(optimized_result.optimal_swaps, Some(designed_swaps));
        assert!(optimized_result.proven && reference_result.proven);

        let optimized_median = TimingSamples::collect(samples, || {
            std::hint::black_box(optimized.solve(circuit, &arch));
        })
        .median_ns();
        let reference_median = TimingSamples::collect(samples, || {
            std::hint::black_box(reference.solve(circuit, &arch));
        })
        .median_ns();
        let row = ExactTiming {
            device: device.name().to_string(),
            designed_swaps,
            seed,
            optimal_swaps: optimized_result.optimal_swaps.expect("proven"),
            proven: optimized_result.proven,
            optimized_median_ns: optimized_median,
            optimized_nodes: optimized_result.nodes_explored,
            reference_median_ns: reference_median,
            reference_nodes: reference_result.nodes_explored,
            speedup: reference_median as f64 / optimized_median.max(1) as f64,
            node_ratio: reference_result.nodes_explored as f64
                / optimized_result.nodes_explored.max(1) as f64,
            samples,
        };
        println!(
            "{:<6} {:>6} {:>11.3} ms {:>11.3} ms {:>8.2}x {:>12} {:>12} {:>7.2}x",
            row.designed_swaps,
            row.seed,
            row.optimized_median_ns as f64 / 1e6,
            row.reference_median_ns as f64 / 1e6,
            row.speedup,
            row.optimized_nodes,
            row.reference_nodes,
            row.node_ratio
        );
        rows.push(row);
    }

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&rows).expect("timings serialize");
        std::fs::write(&path, json).expect("timing JSON is writable");
        eprintln!("wrote exact timings to {path}");
    }
}
