//! Regenerates Figure 4 of the paper: SWAP-ratio optimality gaps of four QLS
//! tools on the evaluation architectures.
//!
//! ```text
//! tool_evaluation                 # quick run, all four devices
//! tool_evaluation --arch aspen4   # one device
//! tool_evaluation --full          # the paper's full circuit counts (slow)
//! tool_evaluation --all           # all devices plus the aggregate table
//! tool_evaluation --threads 8     # explicit worker count (default: all cores)
//! tool_evaluation --timing-json engine_timings.json   # per-job timing export
//! ```

use qubikos_arch::DeviceKind;
use qubikos_bench::evaluation::{
    aggregate_by_tool, run_tool_evaluation_with_sink, EvaluationConfig,
};
use qubikos_bench::report::{render_aggregate, render_evaluation};
use qubikos_engine::{threads_from_args, StderrProgress, TeeSink, TimingSink, AUTO_THREADS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let all = args.iter().any(|a| a == "--all") || !args.iter().any(|a| a == "--arch");
    let threads = threads_from_args(&args).unwrap_or(AUTO_THREADS);
    let timing_path = args.iter().position(|a| a == "--timing-json").map(|i| {
        let value = args
            .get(i + 1)
            .unwrap_or_else(|| panic!("--timing-json requires an output path"));
        assert!(
            !value.starts_with("--"),
            "--timing-json requires an output path, found flag `{value}`"
        );
        value.clone()
    });
    let device_filter = args
        .iter()
        .position(|a| a == "--arch")
        .and_then(|i| args.get(i + 1))
        .and_then(|name| DeviceKind::parse(name));

    let devices: Vec<DeviceKind> = match (device_filter, all) {
        (Some(device), _) => vec![device],
        (None, _) => DeviceKind::EVALUATION.to_vec(),
    };

    let mut reports = Vec::new();
    let mut timings = Vec::new();
    for device in devices {
        let config = if full {
            EvaluationConfig::paper(device)
        } else {
            EvaluationConfig::quick(device)
        }
        .with_threads(threads);
        eprintln!(
            "running tool evaluation on {} ({} circuits, {} two-qubit gates each)...",
            device.name(),
            config.suite.total_circuits(),
            config.suite.two_qubit_gates
        );
        // Progress always streams to stderr; a fresh per-device timing sink
        // rides along only when exporting, so job ids in the export never
        // collide across devices and runs without --timing-json pay nothing.
        let progress = StderrProgress::new(format!("evaluate {}", device.name()), 20);
        let timing = TimingSink::new();
        let mut sinks: Vec<&dyn qubikos_engine::ProgressSink> = vec![&progress];
        if timing_path.is_some() {
            sinks.push(&timing);
        }
        let report = run_tool_evaluation_with_sink(&config, &TeeSink::new(sinks));
        if timing_path.is_some() {
            timings.push((
                device.name(),
                timing.report().expect("evaluation run finished"),
            ));
        }
        println!("{}", render_evaluation(&report));
        reports.push(report);
    }
    if reports.len() > 1 {
        println!("{}", render_aggregate(&aggregate_by_tool(&reports)));
    }
    if let Some(path) = timing_path {
        // One timing report per device, keyed by device name.
        let by_device: Vec<(String, _)> = timings
            .into_iter()
            .map(|(name, report)| (name.to_string(), report))
            .collect();
        let json = serde_json::to_string_pretty(&by_device).expect("timing reports serialize");
        std::fs::write(&path, json).expect("timing JSON is writable");
        eprintln!("wrote per-job timings to {path}");
    }
}
