//! Regenerates Figure 4 of the paper: SWAP-ratio optimality gaps of four QLS
//! tools on the evaluation architectures. Thin wrapper over
//! [`qubikos_bench::cli::eval_command`] — `qubikos eval` is the same command
//! under the unified CLI.
//!
//! ```text
//! tool_evaluation                 # quick run, all four devices
//! tool_evaluation --arch aspen4   # one device
//! tool_evaluation --full          # the paper's full circuit counts (slow)
//! tool_evaluation --threads 8     # explicit worker count (default: all cores)
//! tool_evaluation --timing-json engine_timings.json   # per-job timing export
//! tool_evaluation --suite DIR     # run from a stored suite + result cache
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    qubikos_bench::cli::exit_with(qubikos_bench::cli::eval_command(&args));
}
