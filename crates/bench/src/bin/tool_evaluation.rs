//! Regenerates Figure 4 of the paper: SWAP-ratio optimality gaps of four QLS
//! tools on the evaluation architectures.
//!
//! ```text
//! tool_evaluation                 # quick run, all four devices
//! tool_evaluation --arch aspen4   # one device
//! tool_evaluation --full          # the paper's full circuit counts (slow)
//! tool_evaluation --all           # all devices plus the aggregate table
//! ```

use qubikos_arch::DeviceKind;
use qubikos_bench::evaluation::{aggregate_by_tool, run_tool_evaluation, EvaluationConfig};
use qubikos_bench::report::{render_aggregate, render_evaluation};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let all = args.iter().any(|a| a == "--all") || !args.iter().any(|a| a == "--arch");
    let device_filter = args
        .iter()
        .position(|a| a == "--arch")
        .and_then(|i| args.get(i + 1))
        .and_then(|name| DeviceKind::parse(name));

    let devices: Vec<DeviceKind> = match (device_filter, all) {
        (Some(device), _) => vec![device],
        (None, _) => DeviceKind::EVALUATION.to_vec(),
    };

    let mut reports = Vec::new();
    for device in devices {
        let config = if full {
            EvaluationConfig::paper(device)
        } else {
            EvaluationConfig::quick(device)
        };
        eprintln!(
            "running tool evaluation on {} ({} circuits, {} two-qubit gates each)...",
            device.name(),
            config.suite.total_circuits(),
            config.suite.two_qubit_gates
        );
        let report = run_tool_evaluation(&config);
        println!("{}", render_evaluation(&report));
        reports.push(report);
    }
    if reports.len() > 1 {
        println!("{}", render_aggregate(&aggregate_by_tool(&reports)));
    }
}
