//! Exports a QUBIKOS benchmark suite to disk so external toolchains
//! (Qiskit, t|ket⟩, QMAP, …) can be evaluated on the same instances.
//!
//! Each instance is written as an OpenQASM 2.0 file plus a JSON sidecar with
//! the metadata a fair evaluation needs: the optimal SWAP count, the optimal
//! initial mapping, and the generator seed.
//!
//! Generation + export runs on the shared execution engine, one job per
//! instance: `SuiteConfig::instance_seed` makes each job an independent,
//! order-free unit, so exporting a full Eagle-127 suite parallelizes across
//! every core while producing byte-identical files to a sequential export.
//!
//! ```text
//! export_suite --arch aspen4 --out qubikos_suite [--full] [--threads 8]
//! ```

use qubikos::{generate, GeneratorConfig, SuiteConfig};
use qubikos_arch::DeviceKind;
use qubikos_circuit::to_qasm;
use qubikos_engine::{threads_from_args, Engine, StderrProgress, AUTO_THREADS};
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let device = arg_value("--arch")
        .and_then(|name| DeviceKind::parse(&name))
        .unwrap_or(DeviceKind::Aspen4);
    let out_dir = PathBuf::from(arg_value("--out").unwrap_or_else(|| "qubikos_suite".to_string()));
    let full = args.iter().any(|a| a == "--full");
    let threads = threads_from_args(&args).unwrap_or(AUTO_THREADS);

    let arch = device.build();
    let mut suite_config = SuiteConfig::paper_evaluation(device);
    if !full {
        suite_config = suite_config.with_circuits_per_count(2);
    }
    std::fs::create_dir_all(&out_dir)?;

    // One job per instance of the (SWAP count × instance) grid; the derived
    // per-instance seed makes generation order-independent.
    let jobs: Vec<(usize, usize)> = suite_config
        .swap_counts
        .iter()
        .enumerate()
        .flat_map(|(count_index, _)| {
            (0..suite_config.circuits_per_count).map(move |instance| (count_index, instance))
        })
        .collect();

    let progress = StderrProgress::new(format!("export {}", device.name()), 10);
    let written = Engine::new(threads)
        .with_base_seed(suite_config.base_seed)
        .run_values(
            &jobs,
            |_worker| (),
            |(), _ctx, &(count_index, instance)| -> Result<String, String> {
                let swap_count = suite_config.swap_counts[count_index];
                let seed = suite_config.instance_seed(count_index, instance);
                let gen_config =
                    GeneratorConfig::new(swap_count, suite_config.two_qubit_gates).with_seed(seed);
                let benchmark =
                    generate(&arch, &gen_config).map_err(|e| format!("generate: {e:?}"))?;
                let stem = format!("{}_swaps{}_inst{}", device.name(), swap_count, instance);
                std::fs::write(
                    out_dir.join(format!("{stem}.qasm")),
                    to_qasm(benchmark.circuit()),
                )
                .map_err(|e| format!("write {stem}.qasm: {e}"))?;
                let metadata = serde_json::json!({
                    "architecture": benchmark.architecture(),
                    "optimal_swaps": benchmark.optimal_swaps(),
                    "two_qubit_gates": benchmark.circuit().two_qubit_gate_count(),
                    "seed": seed,
                    "optimal_initial_mapping": benchmark.reference_mapping().as_slice(),
                });
                let json = serde_json::to_string_pretty(&metadata)
                    .map_err(|e| format!("serialize {stem}.json: {e}"))?;
                std::fs::write(out_dir.join(format!("{stem}.json")), json)
                    .map_err(|e| format!("write {stem}.json: {e}"))?;
                Ok(stem)
            },
            &progress,
        )
        .unwrap_or_else(|error| panic!("suite export aborted: {error}"));

    // Surface the first per-job error (job order, so reproducible).
    let exported = written.into_iter().collect::<Result<Vec<_>, _>>()?;
    println!(
        "wrote {} instances for {} to {}",
        exported.len(),
        device.name(),
        out_dir.display()
    );
    Ok(())
}
