//! Exports a QUBIKOS benchmark suite to disk so external toolchains
//! (Qiskit, t|ket⟩, QMAP, …) can be evaluated on the same instances.
//!
//! Each instance is written as an OpenQASM 2.0 file plus a JSON sidecar with
//! the metadata a fair evaluation needs: the optimal SWAP count, the optimal
//! initial mapping, and the generator seed.
//!
//! ```text
//! export_suite --arch aspen4 --out qubikos_suite [--full]
//! ```

use qubikos::{generate_suite, SuiteConfig};
use qubikos_arch::DeviceKind;
use qubikos_circuit::to_qasm;
use std::fs;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let device = arg_value("--arch")
        .and_then(|name| DeviceKind::parse(&name))
        .unwrap_or(DeviceKind::Aspen4);
    let out_dir = PathBuf::from(arg_value("--out").unwrap_or_else(|| "qubikos_suite".to_string()));
    let full = args.iter().any(|a| a == "--full");

    let arch = device.build();
    let mut suite_config = SuiteConfig::paper_evaluation(device);
    if !full {
        suite_config = suite_config.with_circuits_per_count(2);
    }
    let suite = generate_suite(&arch, &suite_config)?;

    fs::create_dir_all(&out_dir)?;
    for point in &suite {
        let stem = format!(
            "{}_swaps{}_inst{}",
            device.name(),
            point.swap_count,
            point.instance
        );
        fs::write(
            out_dir.join(format!("{stem}.qasm")),
            to_qasm(point.benchmark.circuit()),
        )?;
        let metadata = serde_json::json!({
            "architecture": point.benchmark.architecture(),
            "optimal_swaps": point.benchmark.optimal_swaps(),
            "two_qubit_gates": point.benchmark.circuit().two_qubit_gate_count(),
            "seed": point.seed,
            "optimal_initial_mapping": point.benchmark.reference_mapping().as_slice(),
        });
        fs::write(
            out_dir.join(format!("{stem}.json")),
            serde_json::to_string_pretty(&metadata)?,
        )?;
    }
    println!(
        "wrote {} instances for {} to {}",
        suite.len(),
        device.name(),
        out_dir.display()
    );
    Ok(())
}
