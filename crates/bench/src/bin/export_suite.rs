//! Exports a QUBIKOS benchmark suite to disk so external toolchains
//! (Qiskit, t|ket⟩, QMAP, …) can be evaluated on the same instances. Thin
//! wrapper over [`qubikos_bench::cli::suite_export_command`] — `qubikos
//! suite export` is the same command under the unified CLI.
//!
//! The exported directory is a *store*: `manifest.json` records each
//! instance's seed, designed SWAP count, and QASM content hash, so
//! `qubikos eval --suite DIR` can run from it (with result caching) and
//! `qubikos suite verify --suite DIR` can re-check its integrity. Each
//! instance additionally gets a JSON metadata sidecar with the optimal
//! initial mapping for fair external evaluations.
//!
//! ```text
//! export_suite --arch aspen4 --out qubikos_suite [--full] [--threads 8]
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    qubikos_bench::cli::exit_with(qubikos_bench::cli::suite_export_command(&args));
}
