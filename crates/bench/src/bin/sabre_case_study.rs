//! Regenerates the §IV-C LightSABRE case study: starting from the optimal
//! initial mapping, compare the stock uniform extended-set lookahead with the
//! decayed lookahead the paper proposes. Thin wrapper over
//! [`qubikos_bench::cli::case_study_command`] — `qubikos case-study` is the
//! same command under the unified CLI.
//!
//! ```text
//! sabre_case_study                 # Aspen-4, decay 0.7
//! sabre_case_study --decay 0.5
//! sabre_case_study --threads 8     # explicit worker count (default: all cores)
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    qubikos_bench::cli::exit_with(qubikos_bench::cli::case_study_command(&args));
}
