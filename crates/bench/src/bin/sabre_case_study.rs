//! Regenerates the §IV-C LightSABRE case study: starting from the optimal
//! initial mapping, compare the stock uniform extended-set lookahead with the
//! decayed lookahead the paper proposes.
//!
//! ```text
//! sabre_case_study                 # Aspen-4, decay 0.7
//! sabre_case_study --decay 0.5
//! sabre_case_study --threads 8     # explicit worker count (default: all cores)
//! ```

use qubikos_arch::DeviceKind;
use qubikos_bench::case_study::{run_case_study, CaseStudyConfig};
use qubikos_bench::report::render_case_study;
use qubikos_engine::{threads_from_args, AUTO_THREADS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let decay = args
        .iter()
        .position(|a| a == "--decay")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.7);
    let full = args.iter().any(|a| a == "--full");
    let threads = threads_from_args(&args).unwrap_or(AUTO_THREADS);
    // The lookahead effect the paper analyses only shows up once the padding
    // is dense enough to mislead the extended set, so the default run already
    // uses the paper's Aspen-4 gate budget (300 two-qubit gates).
    let (swap_counts, circuits): (Vec<usize>, usize) = if full {
        (vec![5, 10, 15, 20], 10)
    } else {
        (vec![4, 8, 12], 3)
    };
    // Aspen-4 with the paper's gate budget, plus Sycamore where routing from
    // the optimal mapping is harder and lookahead weighting actually matters.
    for (device, gates) in [(DeviceKind::Aspen4, 300), (DeviceKind::Sycamore54, 600)] {
        let config = CaseStudyConfig {
            device,
            swap_counts: swap_counts.clone(),
            circuits_per_count: circuits,
            two_qubit_gates: gates,
            decay,
            seed: 11,
            threads,
        };
        let outcome = run_case_study(&config);
        print!("{}", render_case_study(&outcome));
    }
}
