//! Regenerates the §IV-A optimality study: every generated circuit is
//! re-verified (certificate always, exhaustive exact solver on the small
//! SWAP counts) to confirm it needs exactly its designed SWAP count. Thin
//! wrapper over [`qubikos_bench::cli::optimality_command`] — `qubikos
//! optimality` is the same command under the unified CLI.
//!
//! ```text
//! optimality_study              # quick run (5 circuits per SWAP count)
//! optimality_study --full       # the paper's 100 circuits per SWAP count
//! optimality_study --smoke      # smallest complete run, used by nightly CI
//! optimality_study --threads 8  # explicit worker count (default: all cores)
//! optimality_study --suite DIR  # verify a stored suite + result cache
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    qubikos_bench::cli::exit_with(qubikos_bench::cli::optimality_command(&args));
}
