//! Regenerates the §IV-A optimality study: every generated circuit is
//! re-verified (certificate always, exhaustive exact solver on the small
//! SWAP counts) to confirm it needs exactly its designed SWAP count.
//!
//! ```text
//! optimality_study              # quick run (5 circuits per SWAP count)
//! optimality_study --full       # the paper's 100 circuits per SWAP count
//! optimality_study --smoke      # smallest complete run, used by nightly CI
//! optimality_study --threads 8  # explicit worker count (default: all cores)
//! ```

use qubikos_bench::optimality::{run_optimality_study_with_sink, OptimalityConfig};
use qubikos_bench::report::render_optimality;
use qubikos_engine::{threads_from_args, StderrProgress, AUTO_THREADS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = if args.iter().any(|a| a == "--full") {
        OptimalityConfig::paper()
    } else if args.iter().any(|a| a == "--smoke") {
        OptimalityConfig::smoke()
    } else {
        OptimalityConfig::quick()
    }
    .with_threads(threads_from_args(&args).unwrap_or(AUTO_THREADS));
    eprintln!(
        "verifying {} circuits per device on {:?}...",
        config.suite.total_circuits(),
        config.devices.iter().map(|d| d.name()).collect::<Vec<_>>()
    );
    let progress = StderrProgress::new("optimality study", 50);
    let report = run_optimality_study_with_sink(&config, &progress);
    print!("{}", render_optimality(&report));
    if report.failures > 0 {
        eprintln!("ERROR: {} circuits failed verification", report.failures);
        std::process::exit(1);
    }
}
