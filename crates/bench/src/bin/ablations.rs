//! Design ablations called out in DESIGN.md: how the SABRE trial count and
//! extended-set size change the optimality gap, and how redundant-gate
//! padding changes benchmark difficulty. Thin wrapper over
//! [`qubikos_bench::cli::ablations_command`] — `qubikos ablations` is the
//! same command under the unified CLI.
//!
//! ```text
//! ablations
//! ablations --threads 8   # explicit worker count (default: all cores)
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    qubikos_bench::cli::exit_with(qubikos_bench::cli::ablations_command(&args));
}
