//! Design ablations called out in DESIGN.md: how the SABRE trial count and
//! extended-set size change the optimality gap, and how redundant-gate
//! padding changes benchmark difficulty. The sweeps themselves live in
//! [`qubikos_bench::ablations`] and run on the shared execution engine.
//!
//! ```text
//! ablations
//! ablations --threads 8   # explicit worker count (default: all cores)
//! ```

use qubikos_bench::ablations::{run_ablations_with_sink, AblationConfig};
use qubikos_bench::report::render_ablations;
use qubikos_engine::{threads_from_args, StderrProgress, AUTO_THREADS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config =
        AblationConfig::paper().with_threads(threads_from_args(&args).unwrap_or(AUTO_THREADS));
    // One sink across all sweeps: each engine run restarts the progress
    // counter, so the multi-minute paper sweep streams per-run progress.
    let progress = StderrProgress::new("ablations", 3);
    let report = run_ablations_with_sink(&config, &progress);
    print!("{}", render_ablations(&report));
}
