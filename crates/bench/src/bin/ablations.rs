//! Design ablations called out in DESIGN.md: how the SABRE trial count and
//! extended-set size change the optimality gap, and how redundant-gate
//! padding changes benchmark difficulty.
//!
//! ```text
//! ablations
//! ```

use qubikos::{generate_suite, SuiteConfig};
use qubikos_arch::DeviceKind;
use qubikos_layout::{validate_routing, Router, SabreConfig, SabreRouter};

fn mean(values: &[f64]) -> f64 {
    values.iter().sum::<f64>() / values.len().max(1) as f64
}

fn main() {
    let device = DeviceKind::Aspen4;
    let arch = device.build();

    // Ablation 1: SABRE trial count.
    let suite = generate_suite(
        &arch,
        &SuiteConfig {
            swap_counts: vec![4, 8],
            circuits_per_count: 3,
            two_qubit_gates: 150,
            base_seed: 21,
        },
    )
    .expect("suite generation succeeds");
    println!("SABRE trial-count ablation on {}", device.name());
    for trials in [1usize, 4, 16] {
        let router = SabreRouter::new(SabreConfig::default().with_trials(trials).with_seed(5));
        let ratios: Vec<f64> = suite
            .iter()
            .map(|point| {
                let routed = router
                    .route(point.benchmark.circuit(), &arch)
                    .expect("benchmark fits");
                validate_routing(point.benchmark.circuit(), &arch, &routed).expect("valid");
                point
                    .benchmark
                    .swap_ratio(&routed)
                    .expect("non-zero optimum")
            })
            .collect();
        println!("  trials={trials:<3} mean swap ratio {:.2}x", mean(&ratios));
    }

    // Ablation 2: extended-set size.
    println!("SABRE extended-set-size ablation on {}", device.name());
    for size in [0usize, 5, 20, 40] {
        let mut config = SabreConfig::default().with_trials(4).with_seed(5);
        config.extended_set_size = size;
        let router = SabreRouter::new(config);
        let ratios: Vec<f64> = suite
            .iter()
            .map(|point| {
                let routed = router
                    .route(point.benchmark.circuit(), &arch)
                    .expect("benchmark fits");
                point
                    .benchmark
                    .swap_ratio(&routed)
                    .expect("non-zero optimum")
            })
            .collect();
        println!(
            "  extended-set={size:<3} mean swap ratio {:.2}x",
            mean(&ratios)
        );
    }

    // Ablation 3: padding (total gate budget) at a fixed optimal SWAP count.
    println!("Padding ablation on {} (optimal swaps = 6)", device.name());
    for gates in [100usize, 200, 400] {
        let suite = generate_suite(
            &arch,
            &SuiteConfig {
                swap_counts: vec![6],
                circuits_per_count: 3,
                two_qubit_gates: gates,
                base_seed: 33,
            },
        )
        .expect("suite generation succeeds");
        let router = SabreRouter::new(SabreConfig::default().with_trials(4).with_seed(5));
        let ratios: Vec<f64> = suite
            .iter()
            .map(|point| {
                let routed = router
                    .route(point.benchmark.circuit(), &arch)
                    .expect("benchmark fits");
                point
                    .benchmark
                    .swap_ratio(&routed)
                    .expect("non-zero optimum")
            })
            .collect();
        println!(
            "  two-qubit gates={gates:<4} mean swap ratio {:.2}x",
            mean(&ratios)
        );
    }
}
