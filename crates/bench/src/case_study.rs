//! The §IV-C LightSABRE case study: lookahead weighting and routing quality.
//!
//! The paper dissects an Aspen-4 instance where LightSABRE starts from the
//! optimal initial mapping yet routes suboptimally because the extended-set
//! lookahead weighs far-future gates as heavily as imminent ones, and
//! suggests adding a decay factor to the lookahead cost. This module
//! reproduces that analysis quantitatively: it routes QUBIKOS circuits from
//! their known-optimal initial mapping with the stock uniform lookahead and
//! with the proposed decayed lookahead, and reports the SWAP ratios of both.
//!
//! Both routings of each circuit form one [`qubikos_engine`] job, so the
//! study parallelizes across circuits while each worker reuses one uniform
//! and one decayed router for all of its jobs.

use qubikos::{generate_suite, ExperimentPoint, GenerateError, SuiteConfig};
use qubikos_arch::{Architecture, DeviceKind};
use qubikos_engine::{Engine, NullSink, ProgressSink};
use qubikos_layout::{validate_routing, SabreConfig, SabreRouter};
use serde::{Deserialize, Serialize};

/// Configuration of the case study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseStudyConfig {
    /// Device the study runs on.
    pub device: DeviceKind,
    /// Designed SWAP counts to generate circuits for.
    pub swap_counts: Vec<usize>,
    /// Circuits per SWAP count.
    pub circuits_per_count: usize,
    /// Two-qubit gate budget per circuit.
    pub two_qubit_gates: usize,
    /// Lookahead decay factor under test.
    pub decay: f64,
    /// Suite base seed and router seed.
    pub seed: u64,
    /// Number of worker threads; [`qubikos_engine::AUTO_THREADS`] (0) uses
    /// every available core. The outcome is identical for any value.
    pub threads: usize,
}

impl CaseStudyConfig {
    /// Returns the configuration with an explicit thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Result of the case study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseStudyOutcome {
    /// Device the study ran on.
    pub device: DeviceKind,
    /// Number of circuits routed.
    pub circuits: usize,
    /// Mean SWAP ratio with the stock uniform lookahead (router given the
    /// optimal initial mapping).
    pub uniform_lookahead_ratio: f64,
    /// Mean SWAP ratio with the decayed lookahead the paper proposes.
    pub decayed_lookahead_ratio: f64,
    /// The decay factor used.
    pub decay: f64,
    /// Number of circuits the router solved optimally with uniform lookahead.
    pub uniform_optimal: usize,
    /// Number of circuits the router solved optimally with decayed lookahead.
    pub decayed_optimal: usize,
}

/// One circuit's routing quality under both lookahead variants.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PointOutcome {
    uniform_ratio: f64,
    decayed_ratio: f64,
    uniform_optimal: bool,
    decayed_optimal: bool,
}

/// Runs the case study.
///
/// # Errors
///
/// Propagates [`GenerateError`] on suite misconfiguration instead of
/// panicking.
pub fn run_case_study(config: &CaseStudyConfig) -> Result<CaseStudyOutcome, GenerateError> {
    run_case_study_with_sink(config, &NullSink)
}

/// [`run_case_study`] with a caller-supplied progress/metrics sink.
///
/// # Errors
///
/// As [`run_case_study`].
pub fn run_case_study_with_sink(
    config: &CaseStudyConfig,
    sink: &dyn ProgressSink,
) -> Result<CaseStudyOutcome, GenerateError> {
    let arch = config.device.build();
    let suite_config = SuiteConfig {
        swap_counts: config.swap_counts.clone(),
        circuits_per_count: config.circuits_per_count,
        two_qubit_gates: config.two_qubit_gates,
        base_seed: config.seed,
    };
    let suite = generate_suite(&arch, &suite_config)?;

    let engine = Engine::new(config.threads).with_base_seed(config.seed);
    let outcomes = engine
        .run_values(
            &suite,
            |_worker| {
                let uniform = SabreRouter::new(SabreConfig::default().with_seed(config.seed));
                let decayed = SabreRouter::new(
                    SabreConfig::default()
                        .with_seed(config.seed)
                        .with_lookahead_decay(config.decay),
                );
                (uniform, decayed)
            },
            |(uniform, decayed), _ctx, point| {
                let (uniform_ratio, uniform_optimal) = route_ratio(uniform, point, &arch);
                let (decayed_ratio, decayed_optimal) = route_ratio(decayed, point, &arch);
                PointOutcome {
                    uniform_ratio,
                    decayed_ratio,
                    uniform_optimal,
                    decayed_optimal,
                }
            },
            sink,
        )
        .unwrap_or_else(|error| panic!("case study aborted: {error}"));

    // Fold in job order so the floating-point sums are schedule-independent.
    let mean = |select: &dyn Fn(&PointOutcome) -> f64| {
        outcomes.iter().map(select).sum::<f64>() / outcomes.len().max(1) as f64
    };
    Ok(CaseStudyOutcome {
        device: config.device,
        circuits: outcomes.len(),
        uniform_lookahead_ratio: mean(&|o| o.uniform_ratio),
        decayed_lookahead_ratio: mean(&|o| o.decayed_ratio),
        decay: config.decay,
        uniform_optimal: outcomes.iter().filter(|o| o.uniform_optimal).count(),
        decayed_optimal: outcomes.iter().filter(|o| o.decayed_optimal).count(),
    })
}

/// Routes one circuit from its known-optimal initial mapping and returns the
/// SWAP ratio plus whether the routing matched the optimum exactly.
fn route_ratio(router: &SabreRouter, point: &ExperimentPoint, arch: &Architecture) -> (f64, bool) {
    let bench = &point.benchmark;
    let routed = router
        .route_with_initial_mapping(bench.circuit(), arch, bench.reference_mapping())
        .expect("benchmark fits its architecture");
    validate_routing(bench.circuit(), arch, &routed).expect("router output is valid");
    let ratio = bench
        .swap_ratio(&routed)
        .expect("optimal count is non-zero");
    (ratio, routed.swap_count() == bench.optimal_swaps())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qubikos_engine::AUTO_THREADS;

    fn tiny_config() -> CaseStudyConfig {
        CaseStudyConfig {
            device: DeviceKind::Grid3x3,
            swap_counts: vec![1, 2],
            circuits_per_count: 2,
            two_qubit_gates: 20,
            decay: 0.6,
            seed: 3,
            threads: 2,
        }
    }

    #[test]
    fn case_study_reports_both_variants() {
        let outcome = run_case_study(&tiny_config()).expect("valid config");
        assert_eq!(outcome.circuits, 4);
        assert!(outcome.uniform_lookahead_ratio >= 1.0 - 1e-9);
        assert!(outcome.decayed_lookahead_ratio >= 1.0 - 1e-9);
        assert!(outcome.uniform_optimal <= outcome.circuits);
        assert!(outcome.decayed_optimal <= outcome.circuits);
        assert!((outcome.decay - 0.6).abs() < 1e-12);
    }

    #[test]
    fn outcomes_identical_across_thread_counts() {
        let reference = run_case_study(&tiny_config().with_threads(1)).expect("valid config");
        for threads in [2usize, 8, AUTO_THREADS] {
            let outcome =
                run_case_study(&tiny_config().with_threads(threads)).expect("valid config");
            assert_eq!(outcome, reference, "outcome diverged at threads={threads}");
        }
    }
}
