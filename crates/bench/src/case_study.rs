//! The §IV-C LightSABRE case study: lookahead weighting and routing quality.
//!
//! The paper dissects an Aspen-4 instance where LightSABRE starts from the
//! optimal initial mapping yet routes suboptimally because the extended-set
//! lookahead weighs far-future gates as heavily as imminent ones, and
//! suggests adding a decay factor to the lookahead cost. This module
//! reproduces that analysis quantitatively: it routes QUBIKOS circuits from
//! their known-optimal initial mapping with the stock uniform lookahead and
//! with the proposed decayed lookahead, and reports the SWAP ratios of both.

use qubikos::{generate_suite, SuiteConfig};
use qubikos_arch::DeviceKind;
use qubikos_layout::{validate_routing, SabreConfig, SabreRouter};
use serde::{Deserialize, Serialize};

/// Result of the case study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseStudyOutcome {
    /// Device the study ran on.
    pub device: DeviceKind,
    /// Number of circuits routed.
    pub circuits: usize,
    /// Mean SWAP ratio with the stock uniform lookahead (router given the
    /// optimal initial mapping).
    pub uniform_lookahead_ratio: f64,
    /// Mean SWAP ratio with the decayed lookahead the paper proposes.
    pub decayed_lookahead_ratio: f64,
    /// The decay factor used.
    pub decay: f64,
    /// Number of circuits the router solved optimally with uniform lookahead.
    pub uniform_optimal: usize,
    /// Number of circuits the router solved optimally with decayed lookahead.
    pub decayed_optimal: usize,
}

/// Runs the case study on `device` with `circuits_per_count` circuits for
/// each SWAP count in `swap_counts`.
pub fn run_case_study(
    device: DeviceKind,
    swap_counts: &[usize],
    circuits_per_count: usize,
    two_qubit_gates: usize,
    decay: f64,
    seed: u64,
) -> CaseStudyOutcome {
    let arch = device.build();
    let suite_config = SuiteConfig {
        swap_counts: swap_counts.to_vec(),
        circuits_per_count,
        two_qubit_gates,
        base_seed: seed,
    };
    let suite = generate_suite(&arch, &suite_config).expect("suite generation succeeds");

    let uniform = SabreRouter::new(SabreConfig::default().with_seed(seed));
    let decayed = SabreRouter::new(
        SabreConfig::default()
            .with_seed(seed)
            .with_lookahead_decay(decay),
    );

    let mut uniform_ratios = Vec::new();
    let mut decayed_ratios = Vec::new();
    let mut uniform_optimal = 0;
    let mut decayed_optimal = 0;
    for point in &suite {
        let bench = &point.benchmark;
        for (router, ratios, optimal) in [
            (&uniform, &mut uniform_ratios, &mut uniform_optimal),
            (&decayed, &mut decayed_ratios, &mut decayed_optimal),
        ] {
            let routed = router
                .route_with_initial_mapping(bench.circuit(), &arch, bench.reference_mapping())
                .expect("benchmark fits its architecture");
            validate_routing(bench.circuit(), &arch, &routed).expect("router output is valid");
            let ratio = bench
                .swap_ratio(&routed)
                .expect("optimal count is non-zero");
            if routed.swap_count() == bench.optimal_swaps() {
                *optimal += 1;
            }
            ratios.push(ratio);
        }
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    CaseStudyOutcome {
        device,
        circuits: suite.len(),
        uniform_lookahead_ratio: mean(&uniform_ratios),
        decayed_lookahead_ratio: mean(&decayed_ratios),
        decay,
        uniform_optimal,
        decayed_optimal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_reports_both_variants() {
        let outcome = run_case_study(DeviceKind::Grid3x3, &[1, 2], 2, 20, 0.6, 3);
        assert_eq!(outcome.circuits, 4);
        assert!(outcome.uniform_lookahead_ratio >= 1.0 - 1e-9);
        assert!(outcome.decayed_lookahead_ratio >= 1.0 - 1e-9);
        assert!(outcome.uniform_optimal <= outcome.circuits);
        assert!(outcome.decayed_optimal <= outcome.circuits);
        assert!((outcome.decay - 0.6).abs() < 1e-12);
    }
}
