//! The chaos acceptance suite: the whole store/pipeline stack driven under
//! scripted filesystem faults must *converge* — retry absorbs transient
//! faults, quarantine + re-export heal persistent corruption — to a corpus
//! and reports bit-identical to a fault-free run, with every quarantined
//! file accounted for in `quarantine/quarantine.json`.
//!
//! The sweep is seed-driven and deterministic: `FaultPlan::seeded(seed)`
//! turns each seed into a schedule of write failures, torn temp files,
//! `ENOSPC`, rename failures, and read corruption. CI runs a few seeds on
//! every push (`QUBIKOS_CHAOS_SEEDS`, default 3); the nightly job sweeps 50.

use qubikos::SuiteConfig;
use qubikos_arch::DeviceKind;
use qubikos_bench::analytics::{run_suite_analytics, AnalyticsConfig, AnalyticsReport};
use qubikos_bench::evaluation::{run_suite_evaluation, SuiteEvalConfig, SuiteEvalOutcome};
use qubikos_bench::optimality::{run_suite_optimality, OptimalityConfig, SuiteOptimalityOutcome};
use qubikos_bench::store::{
    ExportOptions, SuiteStore, EXPORT_LEDGER_FILE, QUARANTINE_REPORT_FILE, VERIFY_LEDGER_FILE,
};
use qubikos_bench::vfs::{FaultPlan, FaultVfs, RetryPolicy};
use qubikos_engine::NullSink;
use qubikos_exact::ExactConfig;
use std::path::PathBuf;
use std::sync::Arc;

/// A unique temp dir per test; removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("qubikos-chaos-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const DEVICE: DeviceKind = DeviceKind::Grid3x3;

fn tiny_suite() -> SuiteConfig {
    SuiteConfig {
        swap_counts: vec![1, 2],
        circuits_per_count: 2,
        two_qubit_gates: 20,
        base_seed: 5,
    }
}

/// Two shards of two instances each, fsync-on-commit as in production, and
/// the default bounded retry minus its real-time backoff (the chaos loop
/// hammers hundreds of faults; sleeping through each would dominate the
/// test).
fn export_options() -> ExportOptions {
    ExportOptions::default()
        .with_shard_size(2)
        .with_retry(RetryPolicy::default().without_backoff())
}

fn eval_config() -> SuiteEvalConfig {
    SuiteEvalConfig::default().with_threads(1)
}

fn optimality_config() -> OptimalityConfig {
    OptimalityConfig {
        devices: vec![DEVICE],
        suite: tiny_suite(),
        exact: ExactConfig {
            max_swaps: 3,
            node_budget: 10_000_000,
        },
        exact_swap_limit: 2,
        exact_deadline_micros: None,
        threads: 1,
    }
}

fn analytics_config() -> AnalyticsConfig {
    AnalyticsConfig::default().with_threads(1)
}

/// One full pipeline pass over `root`: eval, then optimality, then
/// analytics (which folds the cache eval just banked).
fn run_pipelines(
    store: &SuiteStore,
) -> Result<
    (SuiteEvalOutcome, SuiteOptimalityOutcome, AnalyticsReport),
    qubikos_bench::store::StoreError,
> {
    let eval = run_suite_evaluation(store, &eval_config())?;
    let optimality = run_suite_optimality(store, &optimality_config())?;
    let analytics = run_suite_analytics(store, &analytics_config())?;
    Ok((eval, optimality, analytics))
}

/// Number of chaos seeds to sweep: `QUBIKOS_CHAOS_SEEDS` (CI sets 3 on
/// every push, 50 nightly), defaulting to 3.
fn chaos_seed_count() -> u64 {
    std::env::var("QUBIKOS_CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

/// One way a resume ledger can rot: a label and the transform applied to
/// the healthy ledger text.
type LedgerCorruption = (&'static str, fn(&str) -> String);

fn read_file(root: &std::path::Path, rel: &str) -> String {
    std::fs::read_to_string(root.join(rel))
        .unwrap_or_else(|e| panic!("read {rel} under {}: {e}", root.display()))
}

/// The acceptance criterion for the fault-injection tentpole: for every
/// seed, driving export + eval + optimality + analytics under the seeded
/// fault plan — re-running on failure, exactly as an operator (or the CI
/// retry step) would — converges to a corpus whose manifest and shard
/// manifests are byte-identical to the fault-free run, whose reports are
/// bit-identical, and whose quarantine report accounts for every file the
/// store moved aside along the way.
#[test]
fn seeded_fault_runs_converge_to_the_fault_free_corpus_and_reports() {
    // The fault-free reference.
    let reference = TempDir::new("reference");
    let outcome = SuiteStore::export_with_options(
        &reference.0,
        DEVICE,
        &tiny_suite(),
        &export_options(),
        1,
        &NullSink,
    )
    .expect("reference export");
    let ref_store = outcome.store.expect("reference export completes");
    let (ref_eval, ref_optimality, ref_analytics) =
        run_pipelines(&ref_store).expect("reference pipelines");
    assert_eq!(ref_eval.shards_quarantined, 0);
    let ref_manifest = read_file(&reference.0, "manifest.json");
    let ref_shards: Vec<(String, String)> = ref_store
        .index()
        .shards
        .iter()
        .map(|record| (record.file.clone(), read_file(&reference.0, &record.file)))
        .collect();

    for seed in 0..chaos_seed_count() {
        let dir = TempDir::new(&format!("seed-{seed}"));
        let vfs = Arc::new(FaultVfs::new(FaultPlan::seeded(seed)));

        // Converge: each attempt re-exports (regenerating anything a prior
        // attempt quarantined) and re-runs the pipelines. Every failing
        // attempt consumes at least one scheduled one-shot fault, so a
        // bounded number of attempts always reaches a clean pass.
        let mut converged = None;
        for _attempt in 0..32 {
            let export = SuiteStore::export_with_options_on(
                vfs.clone(),
                &dir.0,
                DEVICE,
                &tiny_suite(),
                &export_options(),
                1,
                &NullSink,
            );
            let store = match export {
                Ok(outcome) => outcome.store.expect("no shard cap configured"),
                Err(_) => continue,
            };
            match run_pipelines(&store) {
                Ok((eval, optimality, analytics))
                    if eval.shards_quarantined == 0
                        && optimality.shards_quarantined == 0
                        && analytics.shards_quarantined == 0 =>
                {
                    converged = Some((store, eval, optimality, analytics));
                    break;
                }
                // A pass that quarantined a shard produced a (correctly)
                // degraded report; the next attempt's export heals it.
                Ok(_) | Err(_) => continue,
            }
        }
        let (store, eval, optimality, analytics) =
            converged.unwrap_or_else(|| panic!("seed {seed} did not converge in 32 attempts"));

        // Byte-identical corpus…
        assert_eq!(
            read_file(&dir.0, "manifest.json"),
            ref_manifest,
            "seed {seed}: root manifest must match the fault-free export"
        );
        for (file, ref_bytes) in &ref_shards {
            assert_eq!(
                &read_file(&dir.0, file),
                ref_bytes,
                "seed {seed}: shard manifest {file} must match the fault-free export"
            );
        }
        // …whose every instance still verifies (hash + parse + round trip
        // pins the QASM bytes to the same content hashes as the reference).
        let verify = store
            .verify_streaming(1, None, &NullSink)
            .expect("verify after convergence");
        assert!(
            verify.failures.is_empty(),
            "seed {seed}: converged corpus must verify clean, got {:?}",
            verify.failures
        );

        // …bit-identical reports…
        assert_eq!(
            serde_json::to_string(&eval.report).expect("serialize"),
            serde_json::to_string(&ref_eval.report).expect("serialize"),
            "seed {seed}: evaluation report must match the fault-free run"
        );
        assert_eq!(
            optimality.report, ref_optimality.report,
            "seed {seed}: optimality report must match the fault-free run"
        );
        assert_eq!(
            serde_json::to_string(&analytics.summary).expect("serialize"),
            serde_json::to_string(&ref_analytics.summary).expect("serialize"),
            "seed {seed}: analytics summary must match the fault-free run"
        );

        // …and a machine-readable account of everything moved aside.
        let quarantine = store.quarantine_report();
        for entry in &quarantine.entries {
            assert!(
                matches!(
                    entry.class.as_str(),
                    "cache" | "shard" | "instance" | "ledger"
                ),
                "seed {seed}: unknown quarantine class {:?}",
                entry.class
            );
            assert!(
                !entry.reason.is_empty(),
                "seed {seed}: quarantine entry for {} has no reason",
                entry.file
            );
            assert!(
                entry.quarantined_as.starts_with("quarantine/"),
                "seed {seed}: {} quarantined outside quarantine/: {}",
                entry.file,
                entry.quarantined_as
            );
        }
        if !quarantine.entries.is_empty() {
            // The report on disk is the canonical artifact CI uploads.
            let on_disk = read_file(&dir.0, QUARANTINE_REPORT_FILE);
            let parsed: qubikos_bench::store::QuarantineReport =
                serde_json::from_str(&on_disk).expect("quarantine.json parses");
            assert_eq!(parsed, quarantine);
        }
        // Nightly CI sets QUBIKOS_CHAOS_ARTIFACT_DIR and uploads it: one
        // quarantine report per seed that needed one, preserved past the
        // temp-dir cleanup below.
        if let Ok(artifact_dir) = std::env::var("QUBIKOS_CHAOS_ARTIFACT_DIR") {
            if !quarantine.entries.is_empty() {
                let artifact_dir = PathBuf::from(artifact_dir);
                std::fs::create_dir_all(&artifact_dir).expect("create artifact dir");
                let json = serde_json::to_string_pretty(&quarantine).expect("serialize");
                std::fs::write(
                    artifact_dir.join(format!("seed-{seed}.quarantine.json")),
                    json,
                )
                .expect("write quarantine artifact");
            }
        }
    }
}

/// A persistently corrupt shard degrades a pipeline pass — skipped,
/// counted, quarantined — instead of failing it, and the next export heals
/// the corpus: the end-to-end self-healing loop, without seeded randomness.
#[test]
fn corrupt_shard_degrades_then_heals_on_re_export() {
    let dir = TempDir::new("degrade-heal");
    let outcome = SuiteStore::export_with_options(
        &dir.0,
        DEVICE,
        &tiny_suite(),
        &export_options(),
        1,
        &NullSink,
    )
    .expect("export");
    let store = outcome.store.expect("export completes");
    let shard_file = store.index().shards[1].file.clone();

    // Rot shard 1's manifest on disk: persistent corruption (every re-read
    // sees the same wrong bytes), so the retry budget cannot heal it.
    std::fs::write(dir.0.join(&shard_file), "{ not a shard manifest").expect("corrupt shard");

    let eval = run_suite_evaluation(&store, &eval_config()).expect("degraded eval");
    assert_eq!(eval.shards_quarantined, 1, "shard 1 must be quarantined");
    assert!(
        !dir.0.join(&shard_file).exists(),
        "the corrupt manifest must have been moved aside"
    );
    let quarantine = store.quarantine_report();
    assert!(
        quarantine.entries.iter().any(|e| e.file == shard_file),
        "quarantine.json must record the shard manifest, got {:?}",
        quarantine.entries
    );

    // Re-export regenerates the quarantined shard; the rerun is whole again.
    let healed = SuiteStore::export_with_options(
        &dir.0,
        DEVICE,
        &tiny_suite(),
        &export_options(),
        1,
        &NullSink,
    )
    .expect("healing export");
    assert_eq!(
        healed.shards_written, 1,
        "exactly the bad shard regenerates"
    );
    assert_eq!(healed.shards_resumed, 1, "the good shard resumes");
    let store = healed.store.expect("healing export completes");
    let eval = run_suite_evaluation(&store, &eval_config()).expect("healed eval");
    assert_eq!(eval.shards_quarantined, 0);
    let verify = store.verify_streaming(1, None, &NullSink).expect("verify");
    assert!(verify.failures.is_empty());
}

/// The three ways a resume ledger rots — truncated mid-write, replaced by
/// garbage, or left over from a different corpus (wrong fingerprint) — and
/// for each, an interrupted **export** restarts cleanly: completed shards
/// are re-validated from disk, missing ones regenerate, and the final
/// manifest is byte-identical to an uninterrupted export.
#[test]
fn corrupt_export_ledgers_restart_cleanly() {
    // The uninterrupted reference manifest.
    let reference = TempDir::new("ledger-reference");
    SuiteStore::export_with_options(
        &reference.0,
        DEVICE,
        &tiny_suite(),
        &export_options(),
        1,
        &NullSink,
    )
    .expect("reference export");
    let ref_manifest = read_file(&reference.0, "manifest.json");

    let corruptions: [LedgerCorruption; 3] = [
        ("truncated", |text| text[..text.len() / 2].to_string()),
        ("garbage", |_| "not json at all {{{".to_string()),
        ("wrong-fingerprint", |_| {
            r#"{"operation": "export", "fingerprint": "0000000000000000", "completed": [0]}"#
                .to_string()
        }),
    ];
    for (name, corrupt) in corruptions {
        let dir = TempDir::new(&format!("export-ledger-{name}"));
        let interrupted = SuiteStore::export_with_options(
            &dir.0,
            DEVICE,
            &tiny_suite(),
            &export_options().with_stop_after_shards(1),
            1,
            &NullSink,
        )
        .expect("interrupted export");
        assert!(
            interrupted.store.is_none(),
            "{name}: the capped export must stop before the root manifest"
        );
        let ledger_path = dir.0.join(EXPORT_LEDGER_FILE);
        let text = std::fs::read_to_string(&ledger_path).expect("ledger exists");
        std::fs::write(&ledger_path, corrupt(&text)).expect("corrupt ledger");

        let resumed = SuiteStore::export_with_options(
            &dir.0,
            DEVICE,
            &tiny_suite(),
            &export_options(),
            1,
            &NullSink,
        )
        .unwrap_or_else(|e| panic!("{name}: restart after ledger corruption failed: {e}"));
        let store = resumed.store.expect("restarted export completes");
        assert_eq!(
            read_file(&dir.0, "manifest.json"),
            ref_manifest,
            "{name}: restarted export must produce the reference manifest"
        );
        // The written shard survives the bad ledger: its on-disk manifest
        // re-validates against the config, so it resumes without the ledger.
        assert_eq!(resumed.shards_resumed, 1, "{name}: shard 0 must resume");
        assert_eq!(resumed.shards_written, 1, "{name}: shard 1 must regenerate");
        let verify = store.verify_streaming(1, None, &NullSink).expect("verify");
        assert!(verify.failures.is_empty(), "{name}: corpus must verify");
        assert!(
            !dir.0.join(EXPORT_LEDGER_FILE).exists(),
            "{name}: a completed export removes its ledger"
        );
    }
}

/// As above for the **verify** ledger: however it rots, the next
/// `suite verify` covers the whole corpus cleanly instead of trusting (or
/// choking on) the bad resume state.
#[test]
fn corrupt_verify_ledgers_restart_cleanly() {
    let corruptions: [LedgerCorruption; 3] = [
        ("truncated", |text| text[..text.len() / 2].to_string()),
        ("garbage", |_| "]]]".to_string()),
        ("wrong-fingerprint", |_| {
            r#"{"operation": "verify", "fingerprint": "0000000000000000", "completed": [0]}"#
                .to_string()
        }),
    ];
    for (name, corrupt) in corruptions {
        let dir = TempDir::new(&format!("verify-ledger-{name}"));
        let outcome = SuiteStore::export_with_options(
            &dir.0,
            DEVICE,
            &tiny_suite(),
            &export_options(),
            1,
            &NullSink,
        )
        .expect("export");
        let store = outcome.store.expect("export completes");

        let partial = store
            .verify_streaming(1, Some(1), &NullSink)
            .expect("partial verify");
        assert!(!partial.complete, "{name}: capped verify must be partial");
        let ledger_path = dir.0.join(VERIFY_LEDGER_FILE);
        let text = std::fs::read_to_string(&ledger_path).expect("verify ledger exists");
        std::fs::write(&ledger_path, corrupt(&text)).expect("corrupt ledger");

        let full = store
            .verify_streaming(1, None, &NullSink)
            .unwrap_or_else(|e| panic!("{name}: verify after ledger corruption failed: {e}"));
        assert!(full.complete, "{name}: the rerun must cover the corpus");
        assert!(
            full.failures.is_empty(),
            "{name}: a clean corpus must verify clean, got {:?}",
            full.failures
        );
        assert_eq!(
            full.shards_resumed, 0,
            "{name}: a rotten ledger must resume nothing"
        );
        assert_eq!(full.shards_checked, 2, "{name}: both shards re-check");
    }
}
