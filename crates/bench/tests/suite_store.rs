//! The acceptance tests for the persistent suite store: a stored corpus
//! reproduces the in-memory pipeline bit-for-bit, and the content-addressed
//! result cache turns a repeated run into pure cache hits (zero circuits
//! routed), which is what lets interrupted or sharded runs resume.

use qubikos::SuiteConfig;
use qubikos_arch::DeviceKind;
use qubikos_bench::evaluation::{
    run_suite_evaluation, run_tool_evaluation, EvaluationConfig, SuiteEvalConfig, DEFAULT_TOOL_SEED,
};
use qubikos_bench::optimality::{run_optimality_study, run_suite_optimality, OptimalityConfig};
use qubikos_bench::store::{export_suite, SuiteStore};
use qubikos_exact::ExactConfig;
use qubikos_layout::ToolKind;
use std::path::PathBuf;

/// A unique temp dir per test; removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("qubikos-suite-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn tiny_suite() -> SuiteConfig {
    SuiteConfig {
        swap_counts: vec![1, 2],
        circuits_per_count: 2,
        two_qubit_gates: 20,
        base_seed: 5,
    }
}

/// ISSUE 5's acceptance criterion: `suite export` → `eval --suite`
/// reproduces the in-memory pipeline's report bit-identically, and a second
/// `eval` on the same suite completes with **zero** routed circuits (all
/// cache hits).
#[test]
fn stored_evaluation_is_bit_identical_and_second_run_is_all_cache_hits() {
    let dir = TempDir::new("eval-cache");
    let device = DeviceKind::Grid3x3;
    let suite = tiny_suite();
    let store = export_suite(&dir.0, device, &suite, 2).expect("export");

    // The in-memory pipeline on the identical configuration.
    let in_memory = run_tool_evaluation(&EvaluationConfig {
        device,
        suite,
        tools: ToolKind::ALL.to_vec(),
        tool_seed: DEFAULT_TOOL_SEED,
        threads: 2,
    })
    .expect("in-memory evaluation");

    let config = SuiteEvalConfig::default().with_threads(2);
    let first = run_suite_evaluation(&store, &config).expect("first suite evaluation");
    assert_eq!(first.cache_hits, 0, "cold cache must have no hits");
    assert_eq!(first.routed, 16, "4 circuits x 4 tools all routed");
    assert_eq!(
        serde_json::to_string(&first.report).expect("serialize"),
        serde_json::to_string(&in_memory).expect("serialize"),
        "stored run must reproduce the in-memory report bit-identically"
    );

    // The warm re-run: every (tool, circuit) pair must come from the cache.
    let second = run_suite_evaluation(&store, &config).expect("second suite evaluation");
    assert_eq!(second.routed, 0, "second run must route zero circuits");
    assert_eq!(second.cache_hits, 16);
    assert_eq!(
        serde_json::to_string(&second.report).expect("serialize"),
        serde_json::to_string(&in_memory).expect("serialize"),
        "cached run must still reproduce the report bit-identically"
    );

    // A reopened store (fresh process in real life) still sees the cache.
    let reopened = SuiteStore::open(&dir.0).expect("reopen");
    let third = run_suite_evaluation(&reopened, &config).expect("third suite evaluation");
    assert_eq!(third.routed, 0);
}

/// Cached results answer exactly the question they were computed for: a
/// different tool seed is a different question, so the cache must miss and
/// the fresh results must overwrite the stale entries.
#[test]
fn different_tool_seed_invalidates_the_cache() {
    let dir = TempDir::new("seed-invalidation");
    let store = export_suite(&dir.0, DeviceKind::Grid3x3, &tiny_suite(), 2).expect("export");

    let seed7 = SuiteEvalConfig::default().with_threads(2);
    run_suite_evaluation(&store, &seed7).expect("seed-7 run");

    let mut seed9 = SuiteEvalConfig::default().with_threads(2);
    seed9.tool_seed = 9;
    let outcome = run_suite_evaluation(&store, &seed9).expect("seed-9 run");
    assert_eq!(
        outcome.routed, 16,
        "a new tool seed must re-route everything"
    );

    // And the cache now answers for seed 9, not seed 7.
    let rerun = run_suite_evaluation(&store, &seed9).expect("seed-9 rerun");
    assert_eq!(rerun.routed, 0);
}

/// The optimality study over a stored suite matches the in-memory study on
/// the same configuration, and its cache behaves like the evaluation's.
#[test]
fn stored_optimality_matches_in_memory_and_caches() {
    let dir = TempDir::new("optimality-cache");
    let suite = SuiteConfig {
        swap_counts: vec![1, 2],
        circuits_per_count: 2,
        two_qubit_gates: 14,
        base_seed: 13,
    };
    let store = export_suite(&dir.0, DeviceKind::Grid3x3, &suite, 2).expect("export");
    let config = OptimalityConfig {
        devices: vec![DeviceKind::Grid3x3],
        suite,
        exact: ExactConfig {
            max_swaps: 3,
            node_budget: 10_000_000,
        },
        exact_swap_limit: 2,
        exact_deadline_micros: None,
        threads: 2,
    };

    let in_memory = run_optimality_study(&config).expect("in-memory study");
    let first = run_suite_optimality(&store, &config).expect("first suite study");
    assert_eq!(first.cache_hits, 0);
    assert_eq!(first.verified, 4);
    assert_eq!(first.report, in_memory, "stored study must match in-memory");

    let second = run_suite_optimality(&store, &config).expect("second suite study");
    assert_eq!(second.verified, 0, "second run must verify zero circuits");
    assert_eq!(second.cache_hits, 4);
    assert_eq!(second.report, in_memory);

    // A tighter exact budget would have to recompute: parameter mismatch
    // must read as a miss, never as a silently wrong cached verdict.
    let mut tighter = config.clone();
    tighter.exact.node_budget = 1_000;
    let recomputed = run_suite_optimality(&store, &tighter).expect("tighter study");
    assert_eq!(recomputed.verified, 4);
}

/// The evaluation and optimality caches share the suite but use disjoint
/// namespaces — warming one must not warm the other.
#[test]
fn eval_and_optimality_caches_are_disjoint() {
    let dir = TempDir::new("disjoint-caches");
    let suite = tiny_suite();
    let store = export_suite(&dir.0, DeviceKind::Grid3x3, &suite, 2).expect("export");
    run_suite_evaluation(&store, &SuiteEvalConfig::default().with_threads(2)).expect("eval");

    let config = OptimalityConfig {
        devices: vec![DeviceKind::Grid3x3],
        suite,
        exact: ExactConfig::default(),
        exact_swap_limit: 1,
        exact_deadline_micros: None,
        threads: 2,
    };
    let outcome = run_suite_optimality(&store, &config).expect("study");
    assert_eq!(
        outcome.cache_hits, 0,
        "eval cache must not answer optimality"
    );
    assert_eq!(outcome.verified, 4);
}
