//! Acceptance tests for the sharded, streaming corpus layer: v1 monolithic
//! manifests still open (as a single-shard corpus identical to what the
//! pre-shard code exported), interrupted exports and verifications resume at
//! shard granularity with byte-identical final artifacts, the evaluation
//! pipeline streams with at most one shard of circuits resident, and the
//! analytics fold is bit-identical at any thread count.

use qubikos::{generate_suite, SuiteConfig};
use qubikos_arch::{devices, DeviceKind};
use qubikos_bench::analytics::{run_suite_analytics, AnalyticsConfig};
use qubikos_bench::evaluation::{
    run_suite_evaluation, run_suite_evaluation_partial, SuiteEvalConfig,
};
use qubikos_bench::store::{ExportOptions, SuiteStore, EXPORT_LEDGER_FILE, VERIFY_LEDGER_FILE};
use qubikos_engine::NullSink;
use std::path::{Path, PathBuf};

/// A unique temp dir per test; removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("qubikos-shard-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The configuration `tests/fixtures/v1_suite` was exported with, by the
/// pre-shard store code (format-1 monolithic `manifest.json`).
fn fixture_config() -> SuiteConfig {
    SuiteConfig {
        swap_counts: vec![1, 2],
        circuits_per_count: 2,
        two_qubit_gates: 16,
        base_seed: 11,
    }
}

/// Copies the committed v1 fixture into a scratch dir (verification ledgers
/// are written next to the root index, and the committed fixture must stay
/// pristine).
fn copy_fixture(into: &Path) -> PathBuf {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/v1_suite");
    std::fs::create_dir_all(into).expect("scratch dir");
    for entry in std::fs::read_dir(&fixture).expect("fixture dir") {
        let entry = entry.expect("fixture entry");
        std::fs::copy(entry.path(), into.join(entry.file_name())).expect("copy fixture file");
    }
    into.to_path_buf()
}

/// ISSUE satellite 1: a v1 monolithic `manifest.json` written by the
/// pre-shard code transparently opens as a single-shard v2 corpus — same
/// instances, clean verification, and `load()` reproduces exactly the
/// circuits `generate_suite` yields for the recorded config.
#[test]
fn v1_fixture_opens_as_a_single_shard_corpus() {
    let dir = TempDir::new("v1-compat");
    let root = copy_fixture(&dir.0);
    let store = SuiteStore::open(&root).expect("v1 manifest opens");

    assert_eq!(store.device(), DeviceKind::Grid3x3);
    assert_eq!(store.config(), &fixture_config());
    assert_eq!(store.shard_count(), 1, "v1 corpus is one synthetic shard");
    assert_eq!(store.total_instances(), 4);

    // The stored corpus is byte-for-byte the one today's generator produces.
    let loaded = store.load().expect("v1 instances load");
    let arch = devices::grid(3, 3);
    let generated = generate_suite(&arch, &fixture_config()).expect("regenerate");
    assert_eq!(loaded, generated, "fixture must round-trip the generator");

    // Full verification (hashes, QASM parse, regeneration) passes unchanged.
    let report = store
        .verify_streaming(2, None, &NullSink)
        .expect("verify runs");
    assert!(
        report.failures.is_empty(),
        "pristine fixture verifies clean"
    );
    assert_eq!(report.instances, 4);
    assert!(report.complete);

    // And a v2 export of the identical config describes identical circuits.
    let reexport = TempDir::new("v1-reexport");
    let outcome = SuiteStore::export_with_options(
        &reexport.0,
        DeviceKind::Grid3x3,
        &fixture_config(),
        &ExportOptions::default(),
        2,
        &NullSink,
    )
    .expect("v2 export");
    let v2 = outcome.store.expect("completes");
    assert_eq!(v2.load().expect("v2 load"), loaded);
}

/// ISSUE satellite 4 (export half): an export killed after K shards leaves a
/// ledger; re-running regenerates only the missing shards and the final root
/// index is byte-identical to an uninterrupted export's.
#[test]
fn interrupted_export_resumes_byte_identically() {
    let interrupted = TempDir::new("export-resume");
    let oneshot = TempDir::new("export-oneshot");
    let config = fixture_config();
    let options = ExportOptions::default().with_shard_size(1);

    // Uninterrupted reference export.
    let reference = SuiteStore::export_with_options(
        &oneshot.0,
        DeviceKind::Grid3x3,
        &config,
        &options,
        2,
        &NullSink,
    )
    .expect("reference export");
    assert_eq!(reference.shards_total, 4);
    assert_eq!(reference.shards_written, 4);

    // "Interrupt" after 2 of 4 shards: no root index yet, ledger on disk.
    let partial = SuiteStore::export_with_options(
        &interrupted.0,
        DeviceKind::Grid3x3,
        &config,
        &options.clone().with_stop_after_shards(2),
        2,
        &NullSink,
    )
    .expect("partial export");
    assert!(partial.store.is_none(), "interrupted export has no index");
    assert_eq!(partial.shards_written, 2);
    assert!(interrupted.0.join(EXPORT_LEDGER_FILE).exists());
    assert!(
        !interrupted.0.join("manifest.json").exists(),
        "a partial corpus must not look complete"
    );

    // Resume: only the 2 missing shards run, the rest come from the ledger.
    let resumed = SuiteStore::export_with_options(
        &interrupted.0,
        DeviceKind::Grid3x3,
        &config,
        &options,
        2,
        &NullSink,
    )
    .expect("resumed export");
    assert_eq!(resumed.shards_resumed, 2, "completed shards must not rerun");
    assert_eq!(resumed.shards_written, 2);
    let store = resumed.store.expect("resume completes");
    assert!(
        !interrupted.0.join(EXPORT_LEDGER_FILE).exists(),
        "clean completion removes the ledger"
    );

    // The resumed corpus is byte-identical to the uninterrupted one.
    let read = |root: &Path, file: &str| std::fs::read(root.join(file)).expect("artifact");
    assert_eq!(
        read(&interrupted.0, "manifest.json"),
        read(&oneshot.0, "manifest.json"),
        "root index must not depend on the interruption"
    );
    for record in &store.index().shards {
        assert_eq!(
            read(&interrupted.0, &record.file),
            read(&oneshot.0, &record.file),
            "shard {} must be byte-identical",
            record.shard
        );
    }
}

/// ISSUE satellite 4 (verify half): a verification stopped after K shards
/// ledgers them; the re-run checks only the remainder and removes the ledger
/// on clean completion.
#[test]
fn interrupted_verify_resumes_from_the_ledger() {
    let dir = TempDir::new("verify-resume");
    let store = SuiteStore::export_with_options(
        &dir.0,
        DeviceKind::Grid3x3,
        &fixture_config(),
        &ExportOptions::default().with_shard_size(1),
        2,
        &NullSink,
    )
    .expect("export")
    .store
    .expect("completes");

    let partial = store
        .verify_streaming(2, Some(2), &NullSink)
        .expect("partial verify");
    assert!(!partial.complete);
    assert_eq!(partial.shards_checked, 2);
    assert_eq!(partial.shards_resumed, 0);
    assert!(partial.failures.is_empty());
    assert!(dir.0.join(VERIFY_LEDGER_FILE).exists());

    let resumed = store
        .verify_streaming(2, None, &NullSink)
        .expect("resumed verify");
    assert!(resumed.complete);
    assert_eq!(resumed.shards_resumed, 2, "ledgered shards must not rerun");
    assert_eq!(resumed.shards_checked, 2);
    assert_eq!(resumed.instances, 2, "only the re-checked instances load");
    assert!(resumed.failures.is_empty());
    assert!(
        !dir.0.join(VERIFY_LEDGER_FILE).exists(),
        "clean completion removes the ledger"
    );
}

/// The tentpole's memory claim: evaluating a sharded corpus never holds more
/// than one shard of circuits resident, a partial run's cache entries are a
/// full resume (the follow-up run routes only the remaining shards), and the
/// shard layout has no effect on the report's bytes.
#[test]
fn streaming_evaluation_is_flat_memory_and_resumes_via_cache() {
    let sharded = TempDir::new("eval-sharded");
    let monolith = TempDir::new("eval-monolith");
    let config = fixture_config();
    let eval = SuiteEvalConfig::default().with_threads(2);

    let store = SuiteStore::export_with_options(
        &sharded.0,
        DeviceKind::Grid3x3,
        &config,
        &ExportOptions::default().with_shard_size(1),
        2,
        &NullSink,
    )
    .expect("export")
    .store
    .expect("completes");

    // Interrupted evaluation: 2 of 4 shards, everything routed fresh.
    let partial =
        run_suite_evaluation_partial(&store, &eval, Some(2), &NullSink).expect("partial eval");
    assert!(!partial.complete);
    assert_eq!(partial.shards, 2);
    assert_eq!(partial.routed, 8, "2 shards x 1 circuit x 4 tools");
    assert_eq!(partial.cache_hits, 0);

    // The full re-run is a resume: the first 2 shards are pure cache hits
    // (their circuits are never even loaded), only the rest routes.
    store.reset_residency_peak();
    let full = run_suite_evaluation(&store, &eval).expect("full eval");
    assert!(full.complete);
    assert_eq!(full.shards, 4);
    assert_eq!(full.cache_hits, 8, "partial run's shards come from cache");
    assert_eq!(full.routed, 8);
    assert!(
        store.residency_peak() <= 1,
        "streaming eval kept {} shards resident",
        store.residency_peak()
    );

    // Shard layout is invisible in the results: a single-shard corpus of the
    // same config reports identical bytes.
    let reference = SuiteStore::export_with_options(
        &monolith.0,
        DeviceKind::Grid3x3,
        &config,
        &ExportOptions::default(),
        2,
        &NullSink,
    )
    .expect("export")
    .store
    .expect("completes");
    assert_eq!(reference.shard_count(), 1);
    let expected = run_suite_evaluation(&reference, &eval).expect("reference eval");
    assert_eq!(
        serde_json::to_string(&full.report).expect("serialize"),
        serde_json::to_string(&expected.report).expect("serialize"),
        "shard layout must not change the report"
    );
}

/// The analytics fold reads only the result cache, covers exactly what the
/// evaluation banked, and its shard-parallel merge renders bit-identical
/// reports at any thread count (associativity is proptest-pinned in the
/// unit tests; this is the end-to-end witness).
#[test]
fn analytics_are_thread_count_invariant() {
    let dir = TempDir::new("analytics");
    let store = SuiteStore::export_with_options(
        &dir.0,
        DeviceKind::Grid3x3,
        &fixture_config(),
        &ExportOptions::default().with_shard_size(1),
        2,
        &NullSink,
    )
    .expect("export")
    .store
    .expect("completes");

    // Before any evaluation the corpus is fully uncovered — not an error.
    let cold = run_suite_analytics(&store, &AnalyticsConfig::default()).expect("cold analytics");
    assert_eq!(cold.summary.instances, 4);
    assert_eq!(cold.summary.fully_covered, 0);

    run_suite_evaluation(&store, &SuiteEvalConfig::default().with_threads(2)).expect("warm cache");

    let single = run_suite_analytics(&store, &AnalyticsConfig::default().with_threads(1))
        .expect("sequential analytics");
    let parallel = run_suite_analytics(&store, &AnalyticsConfig::default().with_threads(8))
        .expect("parallel analytics");
    assert_eq!(
        serde_json::to_string(&single).expect("serialize"),
        serde_json::to_string(&parallel).expect("serialize"),
        "thread count must not change the analytics bytes"
    );
    assert_eq!(single.shards, 4);
    assert_eq!(single.summary.fully_covered, 4);
    for tool in &single.summary.tools {
        assert_eq!(tool.covered, 4, "eval banked every (tool, circuit) pair");
    }
    let wins: u64 = single.summary.tools.iter().map(|t| t.wins).sum();
    assert!(
        wins >= single.summary.fully_covered,
        "every fully covered instance has at least one winner"
    );
}
