//! Executor micro-benchmarks: per-job scheduling overhead and end-to-end
//! evaluation throughput by thread count. These seed the repo's performance
//! trajectory — future engine changes (sharding, batching, async backends)
//! must not regress the overhead numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qubikos_arch::DeviceKind;
use qubikos_bench::evaluation::{run_tool_evaluation, EvaluationConfig};
use qubikos_engine::{available_threads, Engine, NullSink};
use std::hint::black_box;

/// Pure scheduling overhead: 4096 near-empty jobs. Wall time divided by the
/// job count approximates the per-job cost of claim + time + record + merge.
fn bench_executor_overhead(c: &mut Criterion) {
    let jobs: Vec<u64> = (0..4096).collect();
    let mut group = c.benchmark_group("engine_overhead_4096_trivial_jobs");
    group.sample_size(10);
    for threads in [1usize, 2, available_threads()] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let engine = Engine::new(threads);
                b.iter(|| {
                    black_box(
                        engine
                            .run_values(
                                &jobs,
                                |_| (),
                                |_, ctx, &job| job.wrapping_add(ctx.seed),
                                &NullSink,
                            )
                            .expect("no panics"),
                    )
                });
            },
        );
    }
    group.finish();
}

/// End-to-end evaluation throughput on a small real workload (one tool, the
/// 3×3 grid) at 1/2/N threads — the quantity the tentpole refactor exists to
/// improve on multi-core hosts.
fn bench_evaluation_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_evaluation_grid3x3");
    group.sample_size(10);
    for threads in [1usize, 2, available_threads()] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let config = EvaluationConfig::quick(DeviceKind::Grid3x3).with_threads(threads);
                b.iter(|| black_box(run_tool_evaluation(&config)));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_executor_overhead,
    bench_evaluation_throughput
);
criterion_main!(benches);
