//! Benchmark the exact solver and the optimality certificate — the two
//! verification paths behind the §IV-A optimality study (experiment E1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qubikos::{generate, verify_certificate, GeneratorConfig};
use qubikos_arch::DeviceKind;
use qubikos_exact::solver::reference::ReferenceSolver;
use qubikos_exact::{ExactConfig, ExactSolver};
use std::hint::black_box;

/// The rebuilt search core (in-place do/undo DFS, transposition table, SWAP
/// canonicalization, packing bound) on the smoke-suite instance shape —
/// including the SWAP-3 group the naive DFS was too slow to carry, the
/// regime that let `OptimalityConfig::paper()` raise `exact_swap_limit` to 3.
fn bench_exact_solver(c: &mut Criterion) {
    let arch = DeviceKind::Grid3x3.build();
    let mut group = c.benchmark_group("exact_solver_grid3x3");
    group.sample_size(10);
    for swaps in [1usize, 2, 3] {
        let bench_circuit =
            generate(&arch, &GeneratorConfig::new(swaps, 16).with_seed(9)).expect("generates");
        let solver = ExactSolver::new(ExactConfig::default());
        group.bench_with_input(BenchmarkId::from_parameter(swaps), &swaps, |b, _| {
            b.iter(|| black_box(solver.solve(bench_circuit.circuit(), &arch)));
        });
    }
    group.finish();
}

/// The pre-refactor clone-per-branch DFS on the identical instances, so the
/// optimized-vs-reference gap (≥3x wall-clock, ≥5x nodes at SWAP-2/3) is
/// tracked by the same harness that would catch its regression.
fn bench_reference_solver(c: &mut Criterion) {
    let arch = DeviceKind::Grid3x3.build();
    let mut group = c.benchmark_group("exact_reference_grid3x3");
    group.sample_size(10);
    for swaps in [1usize, 2, 3] {
        let bench_circuit =
            generate(&arch, &GeneratorConfig::new(swaps, 16).with_seed(9)).expect("generates");
        let solver = ReferenceSolver::new(ExactConfig::default());
        group.bench_with_input(BenchmarkId::from_parameter(swaps), &swaps, |b, _| {
            b.iter(|| black_box(solver.solve(bench_circuit.circuit(), &arch)));
        });
    }
    group.finish();
}

fn bench_certificate(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimality_certificate");
    group.sample_size(10);
    for device in [DeviceKind::Aspen4, DeviceKind::Eagle127] {
        let arch = device.build();
        let bench_circuit =
            generate(&arch, &GeneratorConfig::new(5, 500).with_seed(2)).expect("generates");
        group.bench_with_input(
            BenchmarkId::from_parameter(device.name()),
            &arch,
            |b, arch| {
                b.iter(|| verify_certificate(black_box(&bench_circuit), arch).expect("certified"));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_exact_solver,
    bench_reference_solver,
    bench_certificate
);
criterion_main!(benches);
