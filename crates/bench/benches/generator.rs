//! Benchmark the QUBIKOS generator itself: how fast can instances for each
//! evaluation architecture be produced, and what does padding cost?

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qubikos::{generate, GeneratorConfig};
use qubikos_arch::DeviceKind;
use std::hint::black_box;

fn bench_generation_per_device(c: &mut Criterion) {
    let mut group = c.benchmark_group("qubikos_generate");
    group.sample_size(10);
    for device in DeviceKind::EVALUATION {
        let arch = device.build();
        let gates = match device {
            DeviceKind::Aspen4 => 300,
            DeviceKind::Eagle127 => 1000,
            _ => 500,
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(device.name()),
            &arch,
            |b, arch| {
                b.iter(|| {
                    let config = GeneratorConfig::new(5, gates).with_seed(1);
                    black_box(generate(arch, &config).expect("generates"))
                });
            },
        );
    }
    group.finish();
}

fn bench_padding_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("qubikos_padding");
    group.sample_size(10);
    let arch = DeviceKind::Aspen4.build();
    for gates in [100usize, 300, 600] {
        group.bench_with_input(BenchmarkId::from_parameter(gates), &gates, |b, &gates| {
            b.iter(|| {
                let config = GeneratorConfig::new(4, gates).with_seed(2);
                black_box(generate(&arch, &config).expect("generates"))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation_per_device, bench_padding_cost);
criterion_main!(benches);
