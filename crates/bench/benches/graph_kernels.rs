//! Benchmark the substrate kernels every experiment leans on: all-pairs
//! distances and VF2 subgraph-isomorphism probes on the device graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qubikos_arch::DeviceKind;
use qubikos_graph::{generators, is_subgraph_isomorphic, DistanceMatrix};
use std::hint::black_box;

fn bench_distance_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_matrix");
    for device in DeviceKind::EVALUATION {
        let arch = device.build();
        group.bench_with_input(
            BenchmarkId::from_parameter(device.name()),
            &arch,
            |b, arch| {
                b.iter(|| black_box(DistanceMatrix::new(arch.coupling_graph())));
            },
        );
    }
    group.finish();
}

fn bench_vf2_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("vf2_probe");
    let eagle = DeviceKind::Eagle127.build();
    // Embeddable pattern: a 10-qubit path.
    let path = generators::path_graph(10);
    group.bench_function("path10_into_eagle", |b| {
        b.iter(|| black_box(is_subgraph_isomorphic(&path, eagle.coupling_graph())));
    });
    // Non-embeddable pattern: a star wider than any heavy-hex degree.
    let star = generators::star_graph(6);
    group.bench_function("star6_into_eagle", |b| {
        b.iter(|| black_box(is_subgraph_isomorphic(&star, eagle.coupling_graph())));
    });
    group.finish();
}

criterion_group!(benches, bench_distance_matrix, bench_vf2_probe);
criterion_main!(benches);
