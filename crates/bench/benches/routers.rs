//! Benchmark the four QLS tools on one Figure-4 style instance per device
//! (the routing kernel behind experiments E2–E5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qubikos::{generate, GeneratorConfig};
use qubikos_arch::{devices, DeviceKind};
use qubikos_layout::ToolKind;
use std::hint::black_box;

/// Per-router micro-bench on the fixed grid(4,4) workload — the same
/// instance `router_bench` times in nightly CI (`router_timings.json`), so
/// criterion numbers and the nightly trend line are directly comparable.
/// This grid workload is the routing-kernel speedup gate: PR-over-PR
/// regressions in the shared kernel (front tracking, incremental scoring)
/// show up here first.
fn bench_tools_on_grid4x4(c: &mut Criterion) {
    let arch = devices::grid(4, 4);
    let bench_circuit =
        generate(&arch, &GeneratorConfig::new(4, 120).with_seed(9)).expect("generates");
    let mut group = c.benchmark_group("route_grid4x4_120g_4swaps");
    group.sample_size(10);
    for tool in ToolKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(tool.name()),
            &tool,
            |b, &tool| {
                let router = tool.build(7);
                b.iter(|| black_box(router.route(bench_circuit.circuit(), &arch).expect("fits")));
            },
        );
    }
    group.finish();
}

fn bench_tools_on_aspen(c: &mut Criterion) {
    let arch = DeviceKind::Aspen4.build();
    let bench_circuit =
        generate(&arch, &GeneratorConfig::new(5, 300).with_seed(3)).expect("generates");
    let mut group = c.benchmark_group("route_aspen4_300g_5swaps");
    group.sample_size(10);
    for tool in ToolKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(tool.name()),
            &tool,
            |b, &tool| {
                let router = tool.build(7);
                b.iter(|| black_box(router.route(bench_circuit.circuit(), &arch).expect("fits")));
            },
        );
    }
    group.finish();
}

fn bench_sabre_across_devices(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_lightsabre_by_device");
    group.sample_size(10);
    for device in [
        DeviceKind::Aspen4,
        DeviceKind::Sycamore54,
        DeviceKind::Rochester53,
    ] {
        let arch = device.build();
        let bench_circuit =
            generate(&arch, &GeneratorConfig::new(5, 400).with_seed(4)).expect("generates");
        let router = ToolKind::LightSabre.build(7);
        group.bench_with_input(
            BenchmarkId::from_parameter(device.name()),
            &arch,
            |b, arch| {
                b.iter(|| black_box(router.route(bench_circuit.circuit(), arch).expect("fits")));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_tools_on_grid4x4,
    bench_tools_on_aspen,
    bench_sabre_across_devices
);
criterion_main!(benches);
