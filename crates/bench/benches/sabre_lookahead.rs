//! Benchmark behind the §IV-C case study (experiment E6): routing from the
//! known-optimal initial mapping under a sweep of lookahead policies.
//!
//! The sweep goes through the kernel's [`WindowLookahead`] policy (via
//! [`SabreConfig::with_lookahead`]) — the same axis the composition matrix
//! enumerates — instead of mutating individual config fields, so the bench
//! exercises exactly what an ablation run builds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qubikos::{generate, GeneratorConfig};
use qubikos_arch::DeviceKind;
use qubikos_layout::kernel::WindowLookahead;
use qubikos_layout::{SabreConfig, SabreRouter};
use std::hint::black_box;

fn bench_lookahead_variants(c: &mut Criterion) {
    let arch = DeviceKind::Aspen4.build();
    let bench_circuit =
        generate(&arch, &GeneratorConfig::new(4, 150).with_seed(6)).expect("generates");
    let mut group = c.benchmark_group("sabre_lookahead_aspen4");
    group.sample_size(10);
    let variants: [(&str, WindowLookahead); 4] = [
        ("front_only", WindowLookahead::front_only()),
        ("uniform", WindowLookahead::sabre_default()),
        (
            "decay_0.7",
            WindowLookahead {
                depth_decay: Some(0.7),
                ..WindowLookahead::sabre_default()
            },
        ),
        (
            "decay_0.4",
            WindowLookahead {
                depth_decay: Some(0.4),
                ..WindowLookahead::sabre_default()
            },
        ),
    ];
    for (name, lookahead) in variants {
        let router = SabreRouter::new(
            SabreConfig::default()
                .with_seed(5)
                .with_lookahead(lookahead),
        );
        group.bench_with_input(BenchmarkId::from_parameter(name), &router, |b, router| {
            b.iter(|| {
                black_box(
                    router
                        .route_with_initial_mapping(
                            bench_circuit.circuit(),
                            &arch,
                            bench_circuit.reference_mapping(),
                        )
                        .expect("fits"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lookahead_variants);
criterion_main!(benches);
