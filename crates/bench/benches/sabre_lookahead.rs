//! Benchmark behind the §IV-C case study (experiment E6): routing from the
//! known-optimal initial mapping with uniform versus decayed lookahead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qubikos::{generate, GeneratorConfig};
use qubikos_arch::DeviceKind;
use qubikos_layout::{SabreConfig, SabreRouter};
use std::hint::black_box;

fn bench_lookahead_variants(c: &mut Criterion) {
    let arch = DeviceKind::Aspen4.build();
    let bench_circuit =
        generate(&arch, &GeneratorConfig::new(4, 150).with_seed(6)).expect("generates");
    let mut group = c.benchmark_group("sabre_lookahead_aspen4");
    group.sample_size(10);
    let variants: [(&str, Option<f64>); 3] = [
        ("uniform", None),
        ("decay_0.7", Some(0.7)),
        ("decay_0.4", Some(0.4)),
    ];
    for (name, decay) in variants {
        let mut config = SabreConfig::default().with_seed(5);
        config.lookahead_decay = decay;
        let router = SabreRouter::new(config);
        group.bench_with_input(BenchmarkId::from_parameter(name), &router, |b, router| {
            b.iter(|| {
                black_box(
                    router
                        .route_with_initial_mapping(
                            bench_circuit.circuit(),
                            &arch,
                            bench_circuit.reference_mapping(),
                        )
                        .expect("fits"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lookahead_variants);
criterion_main!(benches);
