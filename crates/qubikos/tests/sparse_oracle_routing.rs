//! Routing-scale gate for the sparse distance oracle (ISSUE 6 acceptance).
//!
//! Routes QUEKO instances on the 127-qubit Eagle heavy-hex device through
//! all four routers and asserts — via `oracle_stats` — that no dense 127²
//! distance matrix was ever materialized: the sparse oracle computed far
//! fewer rows than qubits-squared and the architecture reports the sparse
//! kind. Also pins the oracle's memory shape on the 433-qubit Osprey lattice
//! and checks that routing results are identical whether the shared
//! architecture is queried from one thread or many (cache state is a
//! performance artifact, never a correctness input).

use qubikos::queko::{generate_queko, QuekoConfig};
use qubikos_arch::{devices, Architecture};
use qubikos_graph::{DistanceOracle, OracleKind};
use qubikos_layout::{validate_routing, ToolKind};

const TOOL_SEED: u64 = 11;

#[test]
fn eagle127_queko_routes_through_all_four_routers_sparsely() {
    let arch = devices::eagle127();
    assert_eq!(arch.oracle_kind(), OracleKind::Sparse);
    assert_eq!(arch.oracle_stats().rows_computed, 0);

    // Modest depth/density keep the (deliberately expensive) QMAP A* router
    // affordable in debug builds; the oracle assertions below don't depend
    // on instance size.
    let queko = generate_queko(&arch, &QuekoConfig::new(6).with_density(0.05).with_seed(5))
        .expect("generates");
    for tool in ToolKind::ALL {
        let routed = tool
            .build(TOOL_SEED)
            .route(queko.circuit(), &arch)
            .expect("fits");
        validate_routing(queko.circuit(), &arch, &routed).expect("valid routing");
    }

    // A dense matrix holds all 127 rows resident; the sparse oracle must
    // never hold more than its (64-slot) cache — that bound is the "no
    // dense 127² matrix" assertion. QUEKO circuits are device-width, so
    // placement alone makes every qubit a distance source: what stays small
    // is the *resident* row count, not the set of sources ever queried.
    let DistanceOracle::Sparse(oracle) = arch.oracle() else {
        panic!("eagle-127 must use the sparse oracle");
    };
    assert!(oracle.cached_rows() <= oracle.row_cache_capacity());
    assert!(
        oracle.row_cache_capacity() < arch.num_qubits(),
        "cache as large as the device — dense matrix in disguise"
    );

    // Recompute stays bounded and heavily amortized. Four routers over this
    // instance measure ~5k row computations against ~580k distance queries;
    // the known cache-thrash regressions (full-row fetches in the swap
    // scorer / multilevel refinement) measured 20k–600k rows, so a 8k
    // ceiling catches them with headroom to spare.
    let stats = arch.oracle_stats();
    assert!(stats.queries > 0, "routers never queried the oracle");
    assert!(
        stats.rows_computed < 8_000,
        "sparse oracle recomputed {} rows — cache is thrashing",
        stats.rows_computed
    );
    assert!(
        stats.cache_hits > 10 * stats.rows_computed,
        "row cache never amortized: {} hits vs {} rows",
        stats.cache_hits,
        stats.rows_computed
    );
}

#[test]
fn osprey433_memory_stays_sublinear_in_n_squared() {
    let arch = devices::osprey433();
    assert_eq!(arch.oracle_kind(), OracleKind::Sparse);

    // Backbone-only: the memory-shape assertions below are instance-
    // independent, and 433-qubit routing at real densities is a nightly
    // benchmark (`oracle_bench`), not a unit-test workload.
    let queko = generate_queko(&arch, &QuekoConfig::new(6).with_density(0.0).with_seed(8))
        .expect("generates");
    let routed = ToolKind::LightSabre
        .build(TOOL_SEED)
        .route(queko.circuit(), &arch)
        .expect("fits");
    validate_routing(queko.circuit(), &arch, &routed).expect("valid routing");

    // Peak oracle memory is capacity × n words; a dense matrix would be
    // n × n. The cache bound is the structural guarantee.
    let DistanceOracle::Sparse(oracle) = arch.oracle() else {
        panic!("osprey-433 must use the sparse oracle");
    };
    let cache_words = oracle.row_cache_capacity() * arch.num_qubits();
    let dense_words = arch.num_qubits() * arch.num_qubits();
    assert!(cache_words * 6 < dense_words, "cache not sublinear in n²");
    assert!(oracle.cached_rows() <= oracle.row_cache_capacity());
    assert!(arch.oracle_stats().rows_computed > 0);
}

/// Routing the same circuits on one shared sparse-oracle architecture from
/// many threads (interleaving cache state arbitrarily) must produce exactly
/// the SWAP counts sequential routing produces.
#[test]
fn shared_sparse_oracle_is_deterministic_across_thread_counts() {
    let arch = devices::eagle127();
    let circuits: Vec<_> = (0..2)
        .map(|seed| {
            generate_queko(
                &arch,
                &QuekoConfig::new(4).with_density(0.1).with_seed(seed),
            )
            .expect("generates")
            .circuit()
            .clone()
        })
        .collect();

    let route_one = |arch: &Architecture, circuit: &qubikos_circuit::Circuit| -> Vec<usize> {
        ToolKind::ALL
            .into_iter()
            .map(|tool| {
                tool.build(TOOL_SEED)
                    .route(circuit, arch)
                    .expect("fits")
                    .swap_count()
            })
            .collect()
    };

    // Sequential baseline on a fresh architecture (cold cache).
    let baseline: Vec<Vec<usize>> = circuits.iter().map(|c| route_one(&arch, c)).collect();

    // Warm, contended cache: all circuits in flight at once on one shared
    // architecture, twice, against a second instance to also cover the
    // fresh-clone path.
    for arch in [&arch, &devices::eagle127()] {
        let concurrent: Vec<Vec<usize>> = std::thread::scope(|scope| {
            let handles: Vec<_> = circuits
                .iter()
                .map(|c| scope.spawn(move || route_one(arch, c)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .collect()
        });
        assert_eq!(concurrent, baseline);
    }
}
