//! Routing-scale gates for the cached/landmark distance oracles (ISSUE 6
//! and ISSUE 7 acceptance).
//!
//! Routes QUEKO instances on the 127-qubit Eagle heavy-hex device through
//! all four routers and asserts — via per-route `oracle_stats` deltas —
//! that no dense 127² distance matrix was ever materialized and that no
//! single router thrashes the row cache: every router stays under the 8k
//! row-recompute ceiling on its own, and the bound-pruning routers really
//! exercise the landmark tier (landmark queries, exact fallbacks, pinned
//! hits all observed). Also pins the oracle's memory shape on the
//! 433-qubit Osprey lattice, compares Osprey's per-gate routing wall-clock
//! against grid(4,4) at benchmark density, and checks that routing results
//! are identical whether the shared architecture is queried from one
//! thread or many (cache state is a performance artifact, never a
//! correctness input).

use std::time::Instant;

use qubikos::queko::{generate_queko, QuekoConfig};
use qubikos_arch::{devices, Architecture};
use qubikos_circuit::Circuit;
use qubikos_graph::{OracleKind, OracleStats};
use qubikos_layout::{validate_routing, Router, SabreConfig, SabreRouter, ToolKind};

const TOOL_SEED: u64 = 11;

#[test]
fn eagle127_queko_routes_through_all_four_routers_sparsely() {
    let arch = devices::eagle127();
    assert_eq!(arch.oracle_kind(), OracleKind::Landmark);
    assert_eq!(arch.oracle_stats().rows_computed, 0);

    // Modest depth/density keep the (deliberately expensive) QMAP A* router
    // affordable in debug builds; the oracle assertions below don't depend
    // on instance size.
    let queko = generate_queko(&arch, &QuekoConfig::new(6).with_density(0.05).with_seed(5))
        .expect("generates");
    let mut per_tool: Vec<(ToolKind, OracleStats)> = Vec::new();
    for tool in ToolKind::ALL {
        let before = arch.oracle_stats();
        let routed = tool
            .build(TOOL_SEED)
            .route(queko.circuit(), &arch)
            .expect("fits");
        validate_routing(queko.circuit(), &arch, &routed).expect("valid routing");
        per_tool.push((tool, arch.oracle_stats().since(&before)));
    }

    // A dense matrix holds all 127 rows resident; the exact row tier behind
    // the landmark index must never hold more than its (64-slot) cache —
    // that bound is the "no dense 127² matrix" assertion. QUEKO circuits
    // are device-width, so placement alone makes every qubit a distance
    // source: what stays small is the *resident* row count, not the set of
    // sources ever queried.
    let rows = arch
        .oracle()
        .row_tier()
        .expect("eagle-127 must route through a row-cached oracle");
    assert!(rows.cached_rows() <= rows.row_cache_capacity());
    assert!(
        rows.row_cache_capacity() < arch.num_qubits(),
        "cache as large as the device — dense matrix in disguise"
    );

    // Per-router recompute stays bounded and heavily amortized. Each router
    // over this instance measures hundreds to ~2k row computations against
    // tens of thousands of distance queries; the known cache-thrash
    // regressions (full-row fetches in the swap scorer / multilevel
    // refinement) measured 20k–600k rows, so an 8k per-router ceiling
    // catches them with headroom to spare.
    for (tool, delta) in &per_tool {
        assert!(delta.queries > 0, "{tool}: router never queried the oracle");
        assert!(
            delta.rows_computed < 8_000,
            "{tool}: recomputed {} rows — cache is thrashing",
            delta.rows_computed
        );
        assert!(
            delta.cache_hits > 10 * delta.rows_computed,
            "{tool}: row cache never amortized: {} hits vs {} rows",
            delta.cache_hits,
            delta.rows_computed
        );
    }

    // The SwapScorer-based routers (SABRE family and tket) must actually
    // drive the landmark tier: bound queries answered, surviving candidates
    // recorded as exact fallbacks, and front-pinned rows re-hit in cache.
    // Routed on a cold architecture each — on the shared (warm) one above,
    // bound queries legitimately resolve as exact peeks of resident rows,
    // so a warm route proves nothing about the landmark index.
    for tool in [ToolKind::LightSabre, ToolKind::Tket] {
        let cold = devices::eagle127();
        let routed = tool
            .build(TOOL_SEED)
            .route(queko.circuit(), &cold)
            .expect("fits");
        validate_routing(queko.circuit(), &cold, &routed).expect("valid routing");
        let delta = cold.oracle_stats();
        assert!(
            delta.landmark_queries > 0,
            "{tool}: pruning never consulted the landmark index"
        );
        assert!(
            delta.exact_fallbacks > 0,
            "{tool}: pruning never retained a candidate"
        );
        assert!(
            delta.pinned_hits > 0,
            "{tool}: front pinning never re-hit a resident row"
        );
    }
}

#[test]
fn osprey433_memory_stays_sublinear_in_n_squared() {
    let arch = devices::osprey433();
    assert_eq!(arch.oracle_kind(), OracleKind::Landmark);

    // Backbone-only: the memory-shape assertions below are instance-
    // independent, and 433-qubit routing at real densities is covered by
    // the per-gate gate below and the nightly `oracle_bench`.
    let queko = generate_queko(&arch, &QuekoConfig::new(6).with_density(0.0).with_seed(8))
        .expect("generates");
    let routed = ToolKind::LightSabre
        .build(TOOL_SEED)
        .route(queko.circuit(), &arch)
        .expect("fits");
    validate_routing(queko.circuit(), &arch, &routed).expect("valid routing");

    // Peak exact-tier memory is capacity × n words and the landmark index
    // adds L × n more; a dense matrix would be n × n. The cache bound is
    // the structural guarantee.
    let rows = arch
        .oracle()
        .row_tier()
        .expect("osprey-433 must route through a row-cached oracle");
    let landmark_rows = arch
        .oracle()
        .landmark()
        .expect("osprey-433 auto-selects the landmark oracle")
        .index()
        .landmark_count();
    let cache_words = (rows.row_cache_capacity() + landmark_rows) * arch.num_qubits();
    let dense_words = arch.num_qubits() * arch.num_qubits();
    assert!(cache_words * 2 < dense_words, "cache not sublinear in n²");
    assert!(rows.cached_rows() <= rows.row_cache_capacity());
    assert!(arch.oracle_stats().rows_computed > 0);
}

/// Osprey-433 at real density routes at grid-like per-gate cost: the
/// landmark-pruned candidate scan plus front-pinned row caching keep the
/// per-gate wall-clock of a 433-qubit QUEKO route within 5x of the same
/// router on grid(4,4) — without them the cold-cache row fetches in
/// placement and the scan over 504 couplers blow the budget by an order
/// of magnitude (~12x measured before this fast path landed).
///
/// Instance pairing: osprey runs at the same density (0.05) the eagle-127
/// acceptance test uses; the grid baseline runs *denser* (0.1) and deeper,
/// which lowers its per-gate cost and makes the 5x bound stricter, not
/// looser. A single trial keeps both sides on the structure-aware greedy
/// placement — extra trials are random restarts whose cost scales with
/// device size, which would measure trial policy, not the oracle.
#[test]
fn osprey433_routes_at_grid_like_per_gate_cost() {
    // Same router config on both devices so the comparison isolates the
    // per-gate oracle + scan cost, not trial counts.
    let router = SabreRouter::new(SabreConfig::default().with_seed(TOOL_SEED).with_trials(1));
    let per_gate = |arch: &Architecture, circuit: &Circuit| -> f64 {
        // Best of three routes: debug-build timing is noisy and the gate is
        // a ratio, so compare each device's best-case per-gate cost.
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            let routed = router.route(circuit, arch).expect("fits");
            let nanos = start.elapsed().as_nanos() as f64;
            assert!(routed.swap_count() > 0 || circuit.gates().is_empty());
            best = best.min(nanos / circuit.gates().len() as f64);
        }
        best
    };

    let grid = devices::grid(4, 4);
    let grid_queko = generate_queko(&grid, &QuekoConfig::new(8).with_density(0.1).with_seed(5))
        .expect("generates");
    let grid_ns = per_gate(&grid, grid_queko.circuit());

    let osprey = devices::osprey433();
    let osprey_queko = generate_queko(
        &osprey,
        &QuekoConfig::new(5).with_density(0.05).with_seed(9),
    )
    .expect("generates");
    let before = osprey.oracle_stats();
    let osprey_ns = per_gate(&osprey, osprey_queko.circuit());
    let delta = osprey.oracle_stats().since(&before);

    // The per-route stats prove the fast path was really taken: bounds
    // answered by the landmark index, a bounded number of exact fallbacks,
    // pinned front rows re-hit in cache, and a row-recompute count far
    // below the cold-cache regime.
    assert!(
        delta.landmark_queries > 0,
        "osprey route never pruned via landmarks"
    );
    assert!(
        delta.exact_fallbacks > 0,
        "osprey route never fell back to exact scoring"
    );
    assert!(
        delta.pinned_hits > 0,
        "osprey route never re-hit a pinned row"
    );
    assert!(
        delta.rows_computed < 8_000,
        "osprey route recomputed {} rows — cache is thrashing",
        delta.rows_computed
    );

    assert!(
        osprey_ns < 5.0 * grid_ns,
        "osprey-433 per-gate cost {osprey_ns:.0}ns exceeds 5x grid(4,4)'s {grid_ns:.0}ns"
    );
}

/// Routing the same circuits on one shared cached-oracle architecture from
/// many threads (interleaving cache and pin state arbitrarily) must produce
/// exactly the SWAP counts sequential routing produces.
#[test]
fn shared_sparse_oracle_is_deterministic_across_thread_counts() {
    let arch = devices::eagle127();
    let circuits: Vec<_> = (0..2)
        .map(|seed| {
            generate_queko(
                &arch,
                &QuekoConfig::new(4).with_density(0.1).with_seed(seed),
            )
            .expect("generates")
            .circuit()
            .clone()
        })
        .collect();

    let route_one = |arch: &Architecture, circuit: &qubikos_circuit::Circuit| -> Vec<usize> {
        ToolKind::ALL
            .into_iter()
            .map(|tool| {
                tool.build(TOOL_SEED)
                    .route(circuit, arch)
                    .expect("fits")
                    .swap_count()
            })
            .collect()
    };

    // Sequential baseline on a fresh architecture (cold cache).
    let baseline: Vec<Vec<usize>> = circuits.iter().map(|c| route_one(&arch, c)).collect();

    // Warm, contended cache: all circuits in flight at once on one shared
    // architecture, twice, against a second instance to also cover the
    // fresh-clone path.
    for arch in [&arch, &devices::eagle127()] {
        let concurrent: Vec<Vec<usize>> = std::thread::scope(|scope| {
            let handles: Vec<_> = circuits
                .iter()
                .map(|c| scope.spawn(move || route_one(arch, c)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .collect()
        });
        assert_eq!(concurrent, baseline);
    }
}
