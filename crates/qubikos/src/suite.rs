//! Benchmark-suite generation matching the paper's experiment configurations.

use crate::benchmark::QubikosCircuit;
use crate::generator::{generate, GenerateError, GeneratorConfig};
use qubikos_arch::{Architecture, DeviceKind};
use serde::{Deserialize, Serialize};

/// Configuration of a benchmark suite: a grid of (SWAP count × instance)
/// circuits sharing one architecture and gate budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteConfig {
    /// The optimal SWAP counts to generate circuits for.
    pub swap_counts: Vec<usize>,
    /// Number of circuits generated per SWAP count.
    pub circuits_per_count: usize,
    /// Target two-qubit gate count per circuit.
    pub two_qubit_gates: usize,
    /// Base RNG seed; instance `(count_index, instance_index)` derives its own
    /// seed from it so suites are reproducible and instances independent.
    pub base_seed: u64,
}

impl SuiteConfig {
    /// The paper's §IV-B evaluation configuration for a device: SWAP counts
    /// {5, 10, 15, 20}, 10 circuits per count, and the device-specific gate
    /// budget (300 for Aspen-4, 1500 for Sycamore/Rochester, 3000 for Eagle).
    pub fn paper_evaluation(device: DeviceKind) -> Self {
        let two_qubit_gates = match device {
            DeviceKind::Grid3x3 => 30,
            DeviceKind::Aspen4 => 300,
            DeviceKind::Sycamore54 | DeviceKind::Rochester53 => 1500,
            // Osprey extends the Eagle budget; the paper stops at Eagle, so
            // the same deep-circuit regime is the natural extrapolation.
            DeviceKind::Eagle127 | DeviceKind::Osprey433 => 3000,
        };
        SuiteConfig {
            swap_counts: vec![5, 10, 15, 20],
            circuits_per_count: 10,
            two_qubit_gates,
            base_seed: 2025,
        }
    }

    /// The paper's §IV-A optimality-study configuration: SWAP counts 1–4,
    /// 100 circuits per count, at most 30 two-qubit gates.
    pub fn paper_optimality_study() -> Self {
        SuiteConfig {
            swap_counts: vec![1, 2, 3, 4],
            circuits_per_count: 100,
            two_qubit_gates: 30,
            base_seed: 2025,
        }
    }

    /// Scales the number of circuits per SWAP count (used to keep harness
    /// runtimes reasonable while preserving the experiment's shape).
    pub fn with_circuits_per_count(mut self, circuits: usize) -> Self {
        self.circuits_per_count = circuits.max(1);
        self
    }

    /// Returns the configuration with a different base seed.
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Total number of circuits the suite will contain.
    pub fn total_circuits(&self) -> usize {
        self.swap_counts.len() * self.circuits_per_count
    }

    /// The seed instance `(count_index, instance)` of this suite is generated
    /// from. A pure function of the config and the grid coordinates, so
    /// callers that generate instances out of order (e.g. a parallel
    /// exporter) produce exactly the circuits [`generate_suite`] would.
    pub fn instance_seed(&self, count_index: usize, instance: usize) -> u64 {
        self.base_seed
            .wrapping_mul(1_000_003)
            .wrapping_add((count_index * self.circuits_per_count + instance) as u64)
    }

    /// Inverse of the flat (count-major) grid order used by
    /// [`generate_suite`]: maps a flat instance index back to
    /// `(count_index, instance)`. Shard exporters use this to generate an
    /// arbitrary contiguous slice of the suite without walking the grid.
    ///
    /// # Panics
    ///
    /// Panics if `flat` is out of range for the suite
    /// (`flat >= total_circuits()`).
    pub fn instance_coordinates(&self, flat: usize) -> (usize, usize) {
        assert!(
            flat < self.total_circuits(),
            "flat index {flat} out of range for a {}-circuit suite",
            self.total_circuits()
        );
        (
            flat / self.circuits_per_count,
            flat % self.circuits_per_count,
        )
    }
}

/// One generated instance along with the grid coordinates it was generated
/// for, as used by the experiment harness when reporting per-cell averages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentPoint {
    /// The designed (optimal) SWAP count.
    pub swap_count: usize,
    /// Index of the instance within its SWAP-count cell.
    pub instance: usize,
    /// The seed the instance was generated from.
    pub seed: u64,
    /// The benchmark circuit itself.
    pub benchmark: QubikosCircuit,
}

/// Generates the full suite for `arch` according to `config`.
///
/// # Errors
///
/// Propagates the first [`GenerateError`] encountered (which, for the
/// supported architectures, only happens on misconfiguration such as a zero
/// SWAP count).
pub fn generate_suite(
    arch: &Architecture,
    config: &SuiteConfig,
) -> Result<Vec<ExperimentPoint>, GenerateError> {
    let mut points = Vec::with_capacity(config.total_circuits());
    for (count_index, &swap_count) in config.swap_counts.iter().enumerate() {
        for instance in 0..config.circuits_per_count {
            let seed = config.instance_seed(count_index, instance);
            let gen_config =
                GeneratorConfig::new(swap_count, config.two_qubit_gates).with_seed(seed);
            let benchmark = generate(arch, &gen_config)?;
            points.push(ExperimentPoint {
                swap_count,
                instance,
                seed,
                benchmark,
            });
        }
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qubikos_arch::devices;

    #[test]
    fn paper_configs_match_the_paper() {
        let aspen = SuiteConfig::paper_evaluation(DeviceKind::Aspen4);
        assert_eq!(aspen.swap_counts, vec![5, 10, 15, 20]);
        assert_eq!(aspen.circuits_per_count, 10);
        assert_eq!(aspen.two_qubit_gates, 300);
        assert_eq!(aspen.total_circuits(), 40);

        let eagle = SuiteConfig::paper_evaluation(DeviceKind::Eagle127);
        assert_eq!(eagle.two_qubit_gates, 3000);

        let study = SuiteConfig::paper_optimality_study();
        assert_eq!(study.swap_counts, vec![1, 2, 3, 4]);
        assert_eq!(study.circuits_per_count, 100);
        assert_eq!(study.two_qubit_gates, 30);
    }

    #[test]
    fn generates_the_requested_grid() {
        let arch = devices::grid(3, 3);
        let config = SuiteConfig {
            swap_counts: vec![1, 2],
            circuits_per_count: 3,
            two_qubit_gates: 25,
            base_seed: 7,
        };
        let suite = generate_suite(&arch, &config).expect("generates");
        assert_eq!(suite.len(), 6);
        assert_eq!(suite.iter().filter(|p| p.swap_count == 1).count(), 3);
        assert_eq!(suite.iter().filter(|p| p.swap_count == 2).count(), 3);
        for point in &suite {
            assert_eq!(point.benchmark.optimal_swaps(), point.swap_count);
            assert_eq!(point.benchmark.seed(), point.seed);
        }
        // Seeds are distinct, so instances differ.
        let seeds: std::collections::BTreeSet<u64> = suite.iter().map(|p| p.seed).collect();
        assert_eq!(seeds.len(), 6);
    }

    #[test]
    fn suites_are_reproducible() {
        let arch = devices::grid(3, 3);
        let config = SuiteConfig {
            swap_counts: vec![1],
            circuits_per_count: 2,
            two_qubit_gates: 20,
            base_seed: 3,
        };
        let a = generate_suite(&arch, &config).expect("generates");
        let b = generate_suite(&arch, &config).expect("generates");
        assert_eq!(a, b);
    }

    #[test]
    fn instance_coordinates_invert_the_flat_order() {
        let config = SuiteConfig {
            swap_counts: vec![1, 2, 5],
            circuits_per_count: 4,
            two_qubit_gates: 20,
            base_seed: 3,
        };
        let mut flat = 0;
        for count_index in 0..config.swap_counts.len() {
            for instance in 0..config.circuits_per_count {
                assert_eq!(config.instance_coordinates(flat), (count_index, instance));
                assert_eq!(
                    config.instance_seed(count_index, instance),
                    config.instance_seed(config.instance_coordinates(flat).0, instance)
                );
                flat += 1;
            }
        }
        assert_eq!(flat, config.total_circuits());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn instance_coordinates_reject_out_of_range() {
        let config = SuiteConfig {
            swap_counts: vec![1],
            circuits_per_count: 2,
            two_qubit_gates: 20,
            base_seed: 3,
        };
        config.instance_coordinates(2);
    }

    #[test]
    fn builder_helpers() {
        let config = SuiteConfig::paper_optimality_study()
            .with_circuits_per_count(5)
            .with_base_seed(99);
        assert_eq!(config.circuits_per_count, 5);
        assert_eq!(config.base_seed, 99);
    }

    #[test]
    fn serde_round_trip() {
        let arch = devices::grid(3, 3);
        let config = SuiteConfig {
            swap_counts: vec![1],
            circuits_per_count: 1,
            two_qubit_gates: 15,
            base_seed: 1,
        };
        let suite = generate_suite(&arch, &config).expect("generates");
        let json = serde_json::to_string(&suite).expect("serialize");
        let back: Vec<ExperimentPoint> = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, suite);
    }
}
