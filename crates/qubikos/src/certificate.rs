//! Mechanical verification of a QUBIKOS instance's optimality certificate.
//!
//! The paper proves optimality in three steps (Lemmas 1–3, Theorem 4). This
//! module re-checks each step on a concrete generated instance:
//!
//! 1. **Upper bound** — the bundled reference solution is a valid routing of
//!    the circuit and uses exactly the claimed number of SWAPs.
//! 2. **Lemma 1 per section** — the interaction graph of each backbone
//!    section (body plus special gate) is *not* isomorphic to any subgraph of
//!    the coupling graph, so the section cannot execute under a single
//!    mapping.
//! 3. **Lemmas 2–3** — within the dependency DAG of the full circuit, every
//!    backbone gate of section `i` precedes section `i`'s special gate, and
//!    section `i-1`'s special gate precedes every backbone gate of section
//!    `i`; the sections therefore execute serially and each contributes one
//!    unavoidable SWAP (Theorem 4).
//!
//! Together these checks certify `optimal_swaps` exactly the way the paper's
//! OLSQ2 experiment does, but in milliseconds instead of SAT-solver hours —
//! and independently of the generator code that produced the instance.

use crate::benchmark::QubikosCircuit;
use qubikos_arch::Architecture;
use qubikos_circuit::DependencyDag;
use qubikos_graph::{is_subgraph_isomorphic, Graph};
use qubikos_layout::{validate_routing, RoutedCircuit, ValidationError};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Reasons a certificate can be rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertificateError {
    /// The instance targets a different architecture than the one supplied.
    ArchitectureMismatch {
        /// Architecture recorded in the instance.
        expected: String,
        /// Architecture supplied for verification.
        actual: String,
    },
    /// The bundled reference solution is not a valid routing.
    InvalidReference(ValidationError),
    /// The reference solution does not use exactly the claimed SWAP count.
    ReferenceSwapMismatch {
        /// The claimed optimal SWAP count.
        claimed: usize,
        /// SWAPs actually present in the reference solution.
        actual: usize,
    },
    /// A section's interaction graph embeds into the coupling graph, so it
    /// would not force a SWAP (Lemma 1 violated).
    SectionEmbeddable {
        /// Index of the offending section.
        section: usize,
    },
    /// A recorded backbone index does not refer to a two-qubit gate.
    MalformedSection {
        /// Index of the offending section.
        section: usize,
        /// Explanation.
        detail: String,
    },
    /// A dependency required by Lemma 2/3 is missing from the circuit DAG.
    MissingDependency {
        /// Index of the offending section.
        section: usize,
        /// Explanation of the missing ordering constraint.
        detail: String,
    },
}

impl fmt::Display for CertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateError::ArchitectureMismatch { expected, actual } => write!(
                f,
                "instance targets architecture '{expected}' but '{actual}' was supplied"
            ),
            CertificateError::InvalidReference(err) => {
                write!(f, "reference solution is not a valid routing: {err}")
            }
            CertificateError::ReferenceSwapMismatch { claimed, actual } => write!(
                f,
                "reference solution uses {actual} SWAPs but the instance claims {claimed}"
            ),
            CertificateError::SectionEmbeddable { section } => write!(
                f,
                "section {section} embeds into the coupling graph and would not force a SWAP"
            ),
            CertificateError::MalformedSection { section, detail } => {
                write!(f, "section {section} metadata is malformed: {detail}")
            }
            CertificateError::MissingDependency { section, detail } => {
                write!(f, "section {section} misses a dependency: {detail}")
            }
        }
    }
}

impl Error for CertificateError {}

/// Verifies the full optimality certificate of `bench` against `arch`.
///
/// # Errors
///
/// Returns the first failed check as a [`CertificateError`].
pub fn verify_certificate(
    bench: &QubikosCircuit,
    arch: &Architecture,
) -> Result<(), CertificateError> {
    if bench.architecture() != arch.name() {
        return Err(CertificateError::ArchitectureMismatch {
            expected: bench.architecture().to_string(),
            actual: arch.name().to_string(),
        });
    }

    verify_upper_bound(bench, arch)?;
    verify_sections_force_swaps(bench, arch)?;
    verify_serial_dependencies(bench)?;
    Ok(())
}

/// Step 1: the reference solution is valid and uses exactly the claimed SWAPs.
fn verify_upper_bound(bench: &QubikosCircuit, arch: &Architecture) -> Result<(), CertificateError> {
    let actual = bench.reference_solution().swap_count();
    if actual != bench.optimal_swaps() {
        return Err(CertificateError::ReferenceSwapMismatch {
            claimed: bench.optimal_swaps(),
            actual,
        });
    }
    // Replay the reference SWAPs to obtain the final mapping.
    let mut final_mapping = bench.reference_mapping().clone();
    for gate in bench.reference_solution().gates() {
        if gate.is_swap() {
            let (a, b) = gate.qubit_pair().expect("swap is a two-qubit gate");
            final_mapping.apply_swap_physical(a, b);
        }
    }
    let routed = RoutedCircuit {
        physical_circuit: bench.reference_solution().clone(),
        initial_mapping: bench.reference_mapping().clone(),
        final_mapping,
        tool: "qubikos-reference".to_string(),
    };
    validate_routing(bench.circuit(), arch, &routed).map_err(CertificateError::InvalidReference)
}

/// Step 2 (Lemma 1): each backbone section's interaction graph does not embed
/// into the coupling graph.
fn verify_sections_force_swaps(
    bench: &QubikosCircuit,
    arch: &Architecture,
) -> Result<(), CertificateError> {
    let gates = bench.circuit().gates();
    for (idx, section) in bench.sections().iter().enumerate() {
        let mut interaction = Graph::with_nodes(bench.circuit().num_qubits());
        for &gate_index in &section.backbone_indices() {
            let gate = gates.get(gate_index).copied().ok_or_else(|| {
                CertificateError::MalformedSection {
                    section: idx,
                    detail: format!("gate index {gate_index} out of range"),
                }
            })?;
            let (a, b) = gate
                .qubit_pair()
                .ok_or_else(|| CertificateError::MalformedSection {
                    section: idx,
                    detail: format!("gate index {gate_index} is not a two-qubit gate"),
                })?;
            interaction.add_edge(a, b);
        }
        // Only the qubits the section actually uses matter for embeddability;
        // isolated nodes always embed and just slow VF2 down.
        let used: Vec<usize> = interaction
            .nodes()
            .filter(|&q| interaction.degree(q) > 0)
            .collect();
        let (pattern, _) = interaction.induced_subgraph(&used);
        if is_subgraph_isomorphic(&pattern, arch.coupling_graph()) {
            return Err(CertificateError::SectionEmbeddable { section: idx });
        }
    }
    Ok(())
}

/// Step 3 (Lemmas 2–3): serial dependency structure across sections.
fn verify_serial_dependencies(bench: &QubikosCircuit) -> Result<(), CertificateError> {
    let dag = DependencyDag::from_circuit(bench.circuit());
    // Map circuit gate index → DAG node.
    let mut node_of: HashMap<usize, usize> = HashMap::with_capacity(dag.len());
    for node in 0..dag.len() {
        node_of.insert(dag.circuit_index(node), node);
    }
    let lookup = |section: usize, gate_index: usize| -> Result<usize, CertificateError> {
        node_of
            .get(&gate_index)
            .copied()
            .ok_or_else(|| CertificateError::MalformedSection {
                section,
                detail: format!("gate index {gate_index} is not a two-qubit gate of the circuit"),
            })
    };

    let mut prev_special_node: Option<usize> = None;
    for (idx, section) in bench.sections().iter().enumerate() {
        let special_node = lookup(idx, section.special_index)?;
        for &gate_index in &section.body_indices {
            let body_node = lookup(idx, gate_index)?;
            if !dag.has_path(body_node, special_node) {
                return Err(CertificateError::MissingDependency {
                    section: idx,
                    detail: format!(
                        "body gate #{gate_index} does not precede the section's special gate"
                    ),
                });
            }
            if let Some(prev) = prev_special_node {
                if !dag.has_path(prev, body_node) {
                    return Err(CertificateError::MissingDependency {
                        section: idx,
                        detail: format!(
                            "body gate #{gate_index} does not depend on the previous special gate"
                        ),
                    });
                }
            }
        }
        if let Some(prev) = prev_special_node {
            if !dag.has_path(prev, special_node) {
                return Err(CertificateError::MissingDependency {
                    section: idx,
                    detail: "special gate does not depend on the previous special gate".to_string(),
                });
            }
        }
        prev_special_node = Some(special_node);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};
    use qubikos_arch::devices;
    use qubikos_circuit::{Circuit, Gate};
    use qubikos_layout::Mapping;

    #[test]
    fn generated_instances_pass_the_certificate() {
        for (arch, swaps, gates) in [
            (devices::grid(3, 3), 1, 20),
            (devices::grid(3, 3), 3, 30),
            (devices::aspen4(), 2, 60),
            (devices::aspen4(), 4, 80),
        ] {
            for seed in 0..4 {
                let config = GeneratorConfig::new(swaps, gates).with_seed(seed);
                let bench = generate(&arch, &config).expect("generates");
                verify_certificate(&bench, &arch)
                    .unwrap_or_else(|e| panic!("certificate failed ({arch}, seed {seed}): {e}"));
            }
        }
    }

    #[test]
    fn certificate_passes_on_large_architectures() {
        for kind in [
            qubikos_arch::DeviceKind::Sycamore54,
            qubikos_arch::DeviceKind::Rochester53,
        ] {
            let arch = kind.build();
            let bench =
                generate(&arch, &GeneratorConfig::new(3, 120).with_seed(9)).expect("generates");
            verify_certificate(&bench, &arch).expect("certificate holds");
        }
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let arch = devices::grid(3, 3);
        let bench = generate(&arch, &GeneratorConfig::new(1, 15)).expect("generates");
        let other = devices::aspen4();
        assert!(matches!(
            verify_certificate(&bench, &other).unwrap_err(),
            CertificateError::ArchitectureMismatch { .. }
        ));
    }

    #[test]
    fn rejects_wrong_swap_claim() {
        let arch = devices::grid(3, 3);
        let bench = generate(&arch, &GeneratorConfig::new(1, 15)).expect("generates");
        let forged = QubikosCircuit::new(
            bench.circuit().clone(),
            2, // claims two SWAPs but the reference only has one
            bench.architecture(),
            bench.reference_mapping().clone(),
            bench.reference_solution().clone(),
            bench.sections().to_vec(),
            bench.seed(),
        );
        assert!(matches!(
            verify_certificate(&forged, &arch).unwrap_err(),
            CertificateError::ReferenceSwapMismatch {
                claimed: 2,
                actual: 1
            }
        ));
    }

    #[test]
    fn rejects_embeddable_section() {
        // Hand-build an instance whose "section" is a plain path: it embeds
        // into the grid, so Lemma 1 fails and the certificate must reject it.
        let arch = devices::grid(3, 3);
        let circuit = Circuit::from_gates(9, [Gate::cx(0, 1), Gate::cx(1, 2)]);
        // A valid reference with one (pointless) SWAP on an unrelated coupler,
        // so that only the Lemma-1 check can reject the instance.
        let reference = Circuit::from_gates(9, [Gate::cx(0, 1), Gate::swap(3, 4), Gate::cx(1, 2)]);
        let section = crate::benchmark::Section {
            body_indices: vec![0],
            special_index: 1,
            swap_physical: (0, 1),
            special_pair: (1, 2),
        };
        let forged = QubikosCircuit::new(
            circuit,
            1,
            "grid-3x3",
            Mapping::identity(9, 9),
            reference,
            vec![section],
            0,
        );
        let err = verify_certificate(&forged, &arch).unwrap_err();
        // Either the reference replay or the embeddability check must fire;
        // for this instance the reference is actually valid, so Lemma 1 is
        // the one that rejects it.
        assert!(matches!(
            err,
            CertificateError::SectionEmbeddable { section: 0 }
        ));
    }

    #[test]
    fn rejects_missing_dependency() {
        let arch = devices::grid(3, 3);
        let bench = generate(&arch, &GeneratorConfig::new(2, 25).with_seed(1)).expect("generates");
        // Swap the two sections' metadata order: section 1's gates now appear
        // to precede section 0's special gate, which cannot hold in the DAG.
        let mut sections = bench.sections().to_vec();
        sections.reverse();
        let forged = QubikosCircuit::new(
            bench.circuit().clone(),
            bench.optimal_swaps(),
            bench.architecture(),
            bench.reference_mapping().clone(),
            bench.reference_solution().clone(),
            sections,
            bench.seed(),
        );
        assert!(matches!(
            verify_certificate(&forged, &arch).unwrap_err(),
            CertificateError::MissingDependency { .. }
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let err = CertificateError::SectionEmbeddable { section: 3 };
        assert!(err.to_string().contains("section 3"));
        let err = CertificateError::ReferenceSwapMismatch {
            claimed: 4,
            actual: 2,
        };
        assert!(err.to_string().contains('4'));
    }
}
