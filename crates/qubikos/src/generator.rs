//! The QUBIKOS circuit generator (Algorithms 1–3 of the paper).

use crate::benchmark::{QubikosCircuit, Section};
use qubikos_arch::Architecture;
use qubikos_circuit::{Circuit, Gate, OneQubitKind};
use qubikos_graph::{bfs_edge_order, Edge, Graph, NodeId};
use qubikos_layout::Mapping;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, VecDeque};
use std::error::Error;
use std::fmt;

/// Configuration of one benchmark instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Desired (and provably optimal) SWAP count.
    pub num_swaps: usize,
    /// Target number of two-qubit gates. If the backbone alone already
    /// exceeds this the circuit simply keeps the backbone (the paper scales
    /// this parameter with the architecture for the same reason).
    pub target_two_qubit_gates: usize,
    /// Fraction of additional single-qubit gates relative to the two-qubit
    /// gate count (cosmetic padding; it never affects SWAP optimality).
    pub single_qubit_ratio: f64,
    /// RNG seed; the same seed always produces the same instance.
    pub seed: u64,
}

impl GeneratorConfig {
    /// Creates a configuration with the paper's defaults for padding.
    pub fn new(num_swaps: usize, target_two_qubit_gates: usize) -> Self {
        GeneratorConfig {
            num_swaps,
            target_two_qubit_gates,
            single_qubit_ratio: 0.1,
            seed: 0,
        }
    }

    /// Returns the configuration with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the configuration with a different single-qubit padding ratio.
    pub fn with_single_qubit_ratio(mut self, ratio: f64) -> Self {
        self.single_qubit_ratio = ratio.max(0.0);
        self
    }
}

/// Errors the generator can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenerateError {
    /// `num_swaps` was zero; a QUBIKOS instance always forces at least one SWAP.
    ZeroSwaps,
    /// The architecture is too small or too densely connected for the
    /// construction (every SWAP must enable a new interaction, which is
    /// impossible on a complete coupling graph).
    UnsupportedArchitecture {
        /// Explanation of why the architecture cannot host the construction.
        detail: String,
    },
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerateError::ZeroSwaps => write!(f, "QUBIKOS instances need at least one SWAP"),
            GenerateError::UnsupportedArchitecture { detail } => {
                write!(f, "architecture cannot host the construction: {detail}")
            }
        }
    }
}

impl Error for GenerateError {}

/// Generates one QUBIKOS benchmark instance for `arch`.
///
/// # Errors
///
/// Returns [`GenerateError::ZeroSwaps`] when `config.num_swaps == 0` and
/// [`GenerateError::UnsupportedArchitecture`] when the coupling graph is
/// complete (no SWAP can ever enable a new interaction) or has fewer than
/// three qubits.
pub fn generate(
    arch: &Architecture,
    config: &GeneratorConfig,
) -> Result<QubikosCircuit, GenerateError> {
    if config.num_swaps == 0 {
        return Err(GenerateError::ZeroSwaps);
    }
    let coupling = arch.coupling_graph();
    let num_physical = arch.num_qubits();
    if num_physical < 3 {
        return Err(GenerateError::UnsupportedArchitecture {
            detail: format!("{num_physical} qubits are too few"),
        });
    }
    if coupling.edge_count() == num_physical * (num_physical - 1) / 2 {
        return Err(GenerateError::UnsupportedArchitecture {
            detail: "coupling graph is complete; every mapping already connects every pair".into(),
        });
    }

    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut builder = Builder::new(arch, &mut rng);
    for _ in 0..config.num_swaps {
        builder.add_section()?;
    }
    builder.pad(config);
    Ok(builder.finish(arch, config))
}

/// Incremental construction state.
struct Builder<'a, 'r> {
    arch: &'a Architecture,
    rng: &'r mut ChaCha8Rng,
    /// Program qubit → physical qubit, evolving as SWAPs are appended.
    prog_to_phys: Vec<NodeId>,
    /// Physical qubit → program qubit (full occupancy).
    phys_to_prog: Vec<NodeId>,
    /// Snapshot of `prog_to_phys` before each section's SWAP; `mappings[i]`
    /// is the mapping section `i`'s body executes under.
    mappings: Vec<Vec<NodeId>>,
    /// The initial mapping (program → physical).
    initial: Vec<NodeId>,
    /// Logical circuit built so far.
    circuit: Circuit,
    /// Reference transpiled circuit built so far.
    reference: Circuit,
    /// Per-section metadata.
    sections: Vec<Section>,
    /// Previous section's special gate (program pair), if any.
    prev_special: Option<(NodeId, NodeId)>,
}

impl<'a, 'r> Builder<'a, 'r> {
    fn new(arch: &'a Architecture, rng: &'r mut ChaCha8Rng) -> Self {
        let n = arch.num_qubits();
        // Random initial bijection between program and physical qubits.
        let mut phys_of: Vec<NodeId> = (0..n).collect();
        phys_of.shuffle(rng);
        let mut prog_at = vec![0; n];
        for (q, &p) in phys_of.iter().enumerate() {
            prog_at[p] = q;
        }
        Builder {
            arch,
            rng,
            prog_to_phys: phys_of.clone(),
            phys_to_prog: prog_at,
            mappings: Vec::new(),
            initial: phys_of,
            circuit: Circuit::new(n),
            reference: Circuit::new(n),
            sections: Vec::new(),
            prev_special: None,
        }
    }

    /// Physical coupler SWAPs that enable a new interaction, together with
    /// the endpoint to saturate (`p`) and the special partner (`p''`).
    ///
    /// Returns triples `(swap_edge, saturate, special_partner)`.
    fn swap_candidates(&self) -> Vec<(Edge, NodeId, NodeId)> {
        let coupling = self.arch.coupling_graph();
        let mut candidates = Vec::new();
        for edge in coupling.edges() {
            for (p, other) in [(edge.u, edge.v), (edge.v, edge.u)] {
                for &partner in coupling.neighbors(other) {
                    if partner != p && !coupling.has_edge(partner, p) {
                        candidates.push((edge, p, partner));
                    }
                }
            }
        }
        candidates
    }

    /// Adds one backbone section forcing exactly one SWAP (Algorithms 1–2).
    fn add_section(&mut self) -> Result<(), GenerateError> {
        let coupling = self.arch.coupling_graph();
        let candidates = self.swap_candidates();
        if candidates.is_empty() {
            return Err(GenerateError::UnsupportedArchitecture {
                detail: "no SWAP can enable a new interaction".into(),
            });
        }
        // Prefer saturating a high-degree endpoint: it minimises the number
        // of other qubits whose edges must also be saturated, keeping the
        // section (and hence the circuit) small.
        let best_degree = candidates
            .iter()
            .map(|&(_, p, _)| coupling.degree(p))
            .max()
            .expect("candidates is non-empty");
        let top: Vec<&(Edge, NodeId, NodeId)> = candidates
            .iter()
            .filter(|&&(_, p, _)| coupling.degree(p) == best_degree)
            .collect();
        let &&(swap_edge, saturate, partner) =
            top.choose(self.rng).expect("top candidates is non-empty");

        // --- Algorithm 1: body edges (program-qubit pairs). ---
        let mut body: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        let saturate_degree = coupling.degree(saturate);
        for edge in coupling.edges() {
            let incident_to_saturate = edge.contains(saturate);
            let has_higher_degree_endpoint = coupling.degree(edge.u) > saturate_degree
                || coupling.degree(edge.v) > saturate_degree;
            if incident_to_saturate || has_higher_degree_endpoint {
                body.insert(self.program_pair(edge.u, edge.v));
            }
        }
        let special = self.program_pair(saturate, partner);
        debug_assert!(!body.contains(&special));

        // --- Connectors: make body ∪ {special} one component that also ---
        // --- touches the previous special gate's qubits.               ---
        let connectors = self.connect(&body, special, self.prev_special);
        body.extend(connectors);

        // --- Algorithm 2: gate ordering. ---
        let num_program = self.circuit.num_qubits();
        let special_edge = Edge::new(special.0, special.1);
        let mut first_half = Vec::new();
        if let Some(prev) = self.prev_special {
            let prev_edge = Edge::new(prev.0, prev.1);
            let mut h1 = Graph::with_nodes(num_program);
            for &(a, b) in &body {
                h1.add_edge(a, b);
            }
            h1.add_edge(prev.0, prev.1);
            first_half = bfs_edge_order(&h1, &[prev.0, prev.1], &[prev_edge]);
        }
        let mut h2 = Graph::with_nodes(num_program);
        for &(a, b) in &body {
            h2.add_edge(a, b);
        }
        h2.add_edge(special.0, special.1);
        let mut second_half = bfs_edge_order(&h2, &[special.0, special.1], &[special_edge]);
        second_half.reverse();

        // --- Emit the section into the logical and reference circuits. ---
        let section_index = self.sections.len();
        let mut body_indices = Vec::new();
        for edge in first_half.iter().chain(second_half.iter()) {
            body_indices.push(self.circuit.gate_count());
            let gate = Gate::cx(edge.u, edge.v);
            self.circuit.push(gate);
            self.reference
                .push(gate.map_qubits(|q| self.prog_to_phys[q]));
        }
        // SWAP, mapping update, then the special gate under the new mapping.
        self.mappings.push(self.prog_to_phys.clone());
        self.reference.push(Gate::swap(swap_edge.u, swap_edge.v));
        self.apply_swap(swap_edge.u, swap_edge.v);
        let special_index = self.circuit.gate_count();
        let special_gate = Gate::cx(special.0, special.1);
        self.circuit.push(special_gate);
        self.reference
            .push(special_gate.map_qubits(|q| self.prog_to_phys[q]));

        self.sections.push(Section {
            body_indices,
            special_index,
            swap_physical: (swap_edge.u, swap_edge.v),
            special_pair: special,
        });
        self.prev_special = Some(special);
        let _ = section_index;
        Ok(())
    }

    /// Translates a physical coupler into the program-qubit pair currently
    /// occupying it (canonical order).
    fn program_pair(&self, a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        let (qa, qb) = (self.phys_to_prog[a], self.phys_to_prog[b]);
        (qa.min(qb), qa.max(qb))
    }

    fn apply_swap(&mut self, a: NodeId, b: NodeId) {
        let qa = self.phys_to_prog[a];
        let qb = self.phys_to_prog[b];
        self.phys_to_prog[a] = qb;
        self.phys_to_prog[b] = qa;
        self.prog_to_phys[qa] = b;
        self.prog_to_phys[qb] = a;
    }

    /// Adds connector gates (coupler edges under the current mapping) so that
    /// the body edges form a *single* connected component on their own — one
    /// that also contains at least one qubit of the previous special gate.
    ///
    /// Connectivity must hold without the special edge (and without the
    /// previous special edge): the first-half BFS covers the body through the
    /// previous special gate's qubits and the second-half BFS covers it
    /// through the new special gate's qubits, and both orderings are only
    /// complete when the body itself is connected.
    fn connect(
        &mut self,
        body: &BTreeSet<(NodeId, NodeId)>,
        special: (NodeId, NodeId),
        prev_special: Option<(NodeId, NodeId)>,
    ) -> Vec<(NodeId, NodeId)> {
        let num_program = self.circuit.num_qubits();
        let mut connectors: Vec<(NodeId, NodeId)> = Vec::new();
        loop {
            // Component structure of the body (plus connectors) built so far.
            let mut graph = Graph::with_nodes(num_program);
            for &(a, b) in body.iter().chain(connectors.iter()) {
                graph.add_edge(a, b);
            }
            let seed = *body.iter().next().expect("section body is never empty");

            let mut root = vec![false; num_program];
            let mut queue = VecDeque::from([seed.0, seed.1]);
            root[seed.0] = true;
            root[seed.1] = true;
            while let Some(q) = queue.pop_front() {
                for &nb in graph.neighbors(q) {
                    if !root[nb] {
                        root[nb] = true;
                        queue.push_back(nb);
                    }
                }
            }

            // A program qubit that still needs to be reached: an endpoint of
            // an unconnected body edge, or the previous special gate's qubit.
            let mut target = None;
            for &(a, b) in body.iter().chain(connectors.iter()) {
                if !root[a] {
                    target = Some(a);
                    break;
                }
                if !root[b] {
                    target = Some(b);
                    break;
                }
            }
            if target.is_none() {
                if let Some(prev) = prev_special {
                    if !root[prev.0] && !root[prev.1] {
                        target = Some(prev.0);
                    }
                }
            }
            let Some(target) = target else {
                return connectors;
            };

            // Shortest physical path from the target's location to the root
            // component; every hop becomes a connector gate.
            let path = self.physical_path_to_root(&root, target);
            for window in path.windows(2) {
                let pair = self.program_pair(window[0], window[1]);
                if pair != special && !body.contains(&pair) && !connectors.contains(&pair) {
                    connectors.push(pair);
                }
            }
        }
    }

    /// BFS over the coupling graph from `target`'s physical location to the
    /// nearest physical location hosting a root-component program qubit.
    /// Returns the physical path (target end first).
    fn physical_path_to_root(&self, root: &[bool], target: NodeId) -> Vec<NodeId> {
        let coupling = self.arch.coupling_graph();
        let start = self.prog_to_phys[target];
        let mut parent = vec![usize::MAX; coupling.node_count()];
        let mut seen = vec![false; coupling.node_count()];
        let mut queue = VecDeque::from([start]);
        seen[start] = true;
        let mut goal = None;
        'bfs: while let Some(p) = queue.pop_front() {
            for &nb in coupling.neighbors(p) {
                if seen[nb] {
                    continue;
                }
                seen[nb] = true;
                parent[nb] = p;
                if root[self.phys_to_prog[nb]] {
                    goal = Some(nb);
                    break 'bfs;
                }
                queue.push_back(nb);
            }
        }
        let goal = goal.expect("connected coupling graph always reaches the root component");
        let mut path = vec![goal];
        let mut cur = goal;
        while cur != start {
            cur = parent[cur];
            path.push(cur);
        }
        path.reverse();
        path
    }

    /// Inserts redundant padding gates until the two-qubit gate target is met,
    /// plus cosmetic single-qubit gates (Algorithm 3, final loop).
    fn pad(&mut self, config: &GeneratorConfig) {
        let coupling = self.arch.coupling_graph();
        let couplers: Vec<Edge> = coupling.edges().collect();
        while self.circuit.two_qubit_gate_count() < config.target_two_qubit_gates {
            let section_idx = self.rng.gen_range(0..self.sections.len());
            let edge = *couplers
                .choose(self.rng)
                .expect("architecture has couplers");
            let mapping = &self.mappings[section_idx];
            // Program pair occupying this coupler while section `section_idx`
            // executes (mapping snapshots are program→physical, invert lazily).
            let qa = mapping
                .iter()
                .position(|&p| p == edge.u)
                .expect("full occupancy");
            let qb = mapping
                .iter()
                .position(|&p| p == edge.v)
                .expect("full occupancy");
            let gate = Gate::cx(qa.min(qb), qa.max(qb));
            self.insert_padding(section_idx, gate);
        }
        let singles =
            (self.circuit.two_qubit_gate_count() as f64 * config.single_qubit_ratio) as usize;
        let kinds = OneQubitKind::ALL;
        for _ in 0..singles {
            let section_idx = self.rng.gen_range(0..self.sections.len());
            let qubit = self.rng.gen_range(0..self.circuit.num_qubits());
            let kind = kinds[self.rng.gen_range(0..kinds.len())];
            self.insert_padding(section_idx, Gate::one(kind, qubit));
        }
    }

    /// Inserts `gate` at a random position inside section `section_idx`'s
    /// body (always between the previous special gate and this section's
    /// special gate), mirrors it into the reference solution under that
    /// section's mapping, and shifts all recorded indices.
    fn insert_padding(&mut self, section_idx: usize, gate: Gate) {
        let section = &self.sections[section_idx];
        let low = section
            .body_indices
            .first()
            .copied()
            .unwrap_or(section.special_index);
        let high = section.special_index;
        let pos = self.rng.gen_range(low..=high);
        let mapping = &self.mappings[section_idx];
        let physical_gate = gate.map_qubits(|q| mapping[q]);

        self.circuit.insert(pos, gate);
        // The reference circuit has one extra SWAP gate per preceding section.
        self.reference.insert(pos + section_idx, physical_gate);

        for section in &mut self.sections {
            for idx in &mut section.body_indices {
                if *idx >= pos {
                    *idx += 1;
                }
            }
            if section.special_index >= pos {
                section.special_index += 1;
            }
        }
    }

    fn finish(self, arch: &Architecture, config: &GeneratorConfig) -> QubikosCircuit {
        let mapping = Mapping::from_prog_to_phys(self.initial.clone(), arch.num_qubits());
        QubikosCircuit::new(
            self.circuit,
            self.sections.len(),
            arch.name(),
            mapping,
            self.reference,
            self.sections,
            config.seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qubikos_arch::devices;

    #[test]
    fn rejects_zero_swaps() {
        let arch = devices::grid(3, 3);
        let err = generate(&arch, &GeneratorConfig::new(0, 10)).unwrap_err();
        assert_eq!(err, GenerateError::ZeroSwaps);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn rejects_complete_coupling_graph() {
        let arch = qubikos_arch::Architecture::new(
            "complete-4",
            qubikos_graph::generators::complete_graph(4),
        )
        .expect("connected");
        let err = generate(&arch, &GeneratorConfig::new(1, 10)).unwrap_err();
        assert!(matches!(err, GenerateError::UnsupportedArchitecture { .. }));
    }

    #[test]
    fn rejects_tiny_architecture() {
        let arch = devices::line(2);
        let err = generate(&arch, &GeneratorConfig::new(1, 10)).unwrap_err();
        assert!(matches!(err, GenerateError::UnsupportedArchitecture { .. }));
    }

    #[test]
    fn generates_requested_swap_count_and_size() {
        let arch = devices::grid(3, 3);
        let config = GeneratorConfig::new(3, 40).with_seed(5);
        let bench = generate(&arch, &config).expect("generates");
        assert_eq!(bench.optimal_swaps(), 3);
        assert_eq!(bench.sections().len(), 3);
        assert!(bench.circuit().two_qubit_gate_count() >= 40);
        assert_eq!(bench.reference_solution().swap_count(), 3);
        assert_eq!(bench.architecture(), "grid-3x3");
        // Single-qubit padding was added.
        assert!(bench.circuit().gate_count() > bench.circuit().two_qubit_gate_count());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let arch = devices::aspen4();
        let config = GeneratorConfig::new(2, 60).with_seed(11);
        let a = generate(&arch, &config).expect("generates");
        let b = generate(&arch, &config).expect("generates");
        assert_eq!(a, b);
        let c = generate(&arch, &config.with_seed(12)).expect("generates");
        assert_ne!(a.circuit(), c.circuit());
    }

    #[test]
    fn backbone_indices_point_at_two_qubit_gates() {
        let arch = devices::grid(3, 3);
        let bench = generate(&arch, &GeneratorConfig::new(2, 35).with_seed(3)).expect("generates");
        for section in bench.sections() {
            for &idx in &section.backbone_indices() {
                assert!(bench.circuit().gates()[idx].is_two_qubit());
            }
            let special = bench.circuit().gates()[section.special_index];
            let (a, b) = special.qubit_pair().expect("two-qubit");
            assert_eq!((a.min(b), a.max(b)), section.special_pair);
        }
    }

    #[test]
    fn works_on_every_evaluation_architecture() {
        for kind in qubikos_arch::DeviceKind::EVALUATION {
            let arch = kind.build();
            let bench =
                generate(&arch, &GeneratorConfig::new(2, 50).with_seed(1)).expect("generates");
            assert_eq!(bench.optimal_swaps(), 2);
            assert_eq!(bench.reference_solution().swap_count(), 2);
        }
    }

    #[test]
    fn zero_single_qubit_ratio_emits_only_two_qubit_gates() {
        let arch = devices::grid(3, 3);
        let config = GeneratorConfig::new(1, 20)
            .with_seed(2)
            .with_single_qubit_ratio(0.0);
        let bench = generate(&arch, &config).expect("generates");
        assert_eq!(
            bench.circuit().gate_count(),
            bench.circuit().two_qubit_gate_count()
        );
    }
}
