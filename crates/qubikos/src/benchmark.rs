//! The [`QubikosCircuit`] benchmark instance type.

use qubikos_circuit::{Circuit, CircuitStats};
use qubikos_graph::NodeId;
use qubikos_layout::{Mapping, RoutedCircuit};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One backbone section of a QUBIKOS circuit.
///
/// A section is the set of gates that force exactly one SWAP: its
/// *saturation/connector* gates (the body) followed by one *special* gate
/// which is only executable after the section's designated SWAP.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Section {
    /// Indices (into the final circuit's gate list) of the section's backbone
    /// body gates, in program order.
    pub body_indices: Vec<usize>,
    /// Index of the section's special gate in the final circuit.
    pub special_index: usize,
    /// The physical coupler whose SWAP this section forces, expressed in
    /// physical qubit ids valid at the moment the SWAP is applied.
    pub swap_physical: (NodeId, NodeId),
    /// The special gate's program qubit pair.
    pub special_pair: (NodeId, NodeId),
}

impl Section {
    /// All backbone gate indices of the section (body plus special gate).
    pub fn backbone_indices(&self) -> Vec<usize> {
        let mut v = self.body_indices.clone();
        v.push(self.special_index);
        v
    }
}

/// A generated benchmark circuit with its provably optimal SWAP count.
///
/// The struct carries everything a QLS evaluation needs: the logical circuit
/// to hand to the tool under test, the optimal SWAP count to compare
/// against, and the generator's own reference solution (initial mapping plus
/// transpiled circuit) that witnesses the upper bound.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QubikosCircuit {
    circuit: Circuit,
    optimal_swaps: usize,
    architecture: String,
    reference_mapping: Mapping,
    reference_solution: Circuit,
    sections: Vec<Section>,
    seed: u64,
}

impl QubikosCircuit {
    /// Assembles a benchmark instance (used by the generator).
    pub fn new(
        circuit: Circuit,
        optimal_swaps: usize,
        architecture: impl Into<String>,
        reference_mapping: Mapping,
        reference_solution: Circuit,
        sections: Vec<Section>,
        seed: u64,
    ) -> Self {
        QubikosCircuit {
            circuit,
            optimal_swaps,
            architecture: architecture.into(),
            reference_mapping,
            reference_solution,
            sections,
            seed,
        }
    }

    /// The logical circuit to give to a layout-synthesis tool.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The provably optimal number of SWAP gates.
    pub fn optimal_swaps(&self) -> usize {
        self.optimal_swaps
    }

    /// Name of the architecture the benchmark targets.
    pub fn architecture(&self) -> &str {
        &self.architecture
    }

    /// The known-optimal initial mapping used by the reference solution.
    ///
    /// Handing this mapping to a standalone router isolates routing quality
    /// from placement quality, the use-case discussed in the paper's §IV-C.
    pub fn reference_mapping(&self) -> &Mapping {
        &self.reference_mapping
    }

    /// The generator's own transpiled circuit using exactly
    /// [`optimal_swaps`](Self::optimal_swaps) SWAP gates.
    pub fn reference_solution(&self) -> &Circuit {
        &self.reference_solution
    }

    /// Per-section backbone metadata (used by the optimality certificate).
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Seed the instance was generated from (for reproducibility).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Statistics of the logical circuit.
    pub fn stats(&self) -> CircuitStats {
        CircuitStats::of(&self.circuit)
    }

    /// SWAP ratio of a tool's result against the known optimum — the paper's
    /// per-circuit optimality-gap metric.
    ///
    /// Returns `None` only for the degenerate `optimal_swaps == 0` case,
    /// which the generator never produces.
    pub fn swap_ratio(&self, routed: &RoutedCircuit) -> Option<f64> {
        routed.swap_ratio(self.optimal_swaps)
    }
}

impl fmt::Display for QubikosCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "QUBIKOS[{}] optimal_swaps={} gates={} (2q={}) seed={}",
            self.architecture,
            self.optimal_swaps,
            self.circuit.gate_count(),
            self.circuit.two_qubit_gate_count(),
            self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qubikos_circuit::Gate;

    fn tiny() -> QubikosCircuit {
        let circuit = Circuit::from_gates(3, [Gate::cx(0, 1), Gate::cx(1, 2), Gate::cx(0, 2)]);
        let reference = Circuit::from_gates(
            3,
            [
                Gate::cx(0, 1),
                Gate::cx(1, 2),
                Gate::swap(0, 1),
                Gate::cx(1, 2),
            ],
        );
        QubikosCircuit::new(
            circuit,
            1,
            "line-3",
            Mapping::identity(3, 3),
            reference,
            vec![Section {
                body_indices: vec![0, 1],
                special_index: 2,
                swap_physical: (0, 1),
                special_pair: (0, 2),
            }],
            42,
        )
    }

    #[test]
    fn accessors() {
        let b = tiny();
        assert_eq!(b.optimal_swaps(), 1);
        assert_eq!(b.architecture(), "line-3");
        assert_eq!(b.circuit().gate_count(), 3);
        assert_eq!(b.reference_solution().swap_count(), 1);
        assert_eq!(b.sections().len(), 1);
        assert_eq!(b.seed(), 42);
        assert_eq!(b.stats().two_qubit_gates, 3);
        assert_eq!(b.sections()[0].backbone_indices(), vec![0, 1, 2]);
    }

    #[test]
    fn swap_ratio_uses_optimal_count() {
        let b = tiny();
        let routed = RoutedCircuit {
            physical_circuit: Circuit::from_gates(3, [Gate::swap(0, 1), Gate::swap(1, 2)]),
            initial_mapping: Mapping::identity(3, 3),
            final_mapping: Mapping::identity(3, 3),
            tool: "t".into(),
        };
        assert_eq!(b.swap_ratio(&routed), Some(2.0));
    }

    #[test]
    fn display_mentions_architecture_and_optimum() {
        let text = tiny().to_string();
        assert!(text.contains("line-3"));
        assert!(text.contains("optimal_swaps=1"));
    }

    #[test]
    fn serde_round_trip() {
        let b = tiny();
        let json = serde_json::to_string(&b).expect("serialize");
        let back: QubikosCircuit = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, b);
    }
}
