//! QUBIKOS: QUantum Benchmarks wIth Known Optimal Swap counts.
//!
//! This crate is the reproduction of the paper's core contribution: a
//! generator of quantum circuits whose minimum SWAP count on a given device
//! is known — and provable — by construction.
//!
//! # How a QUBIKOS circuit is built
//!
//! For a requested optimal count of `n` SWAPs the generator produces `n`
//! serial *sections*. Each section:
//!
//! 1. picks a SWAP on the device (a coupler whose exchange gives one of its
//!    qubits a new neighbour),
//! 2. emits *saturation* gates that make the chosen program qubit interact
//!    with all of its current neighbours — and likewise for every program
//!    qubit sitting on a higher-degree physical qubit — so that no
//!    alternative placement can absorb the extra edge (Lemma 1 of the paper),
//! 3. emits one *special* gate to a qubit that only becomes a neighbour
//!    after the SWAP, and
//! 4. orders the gates (duplicating some) so that the previous section's
//!    special gate precedes everything in this section and this section's
//!    special gate follows everything in it (Lemma 2), making the sections
//!    execute serially (Lemma 3).
//!
//! The sum of the per-section optima is then the circuit's optimum
//! (Theorem 4), and redundant padding gates can be inserted without changing
//! it. Every generated [`QubikosCircuit`] carries the reference transpiled
//! solution (the upper bound) and enough section metadata for
//! [`certificate::verify_certificate`] to re-check the lower-bound argument
//! mechanically with VF2 and DAG reachability.
//!
//! # Example
//!
//! ```
//! use qubikos::{generate, GeneratorConfig};
//! use qubikos_arch::devices;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let arch = devices::grid(3, 3);
//! let config = GeneratorConfig::new(2, 30).with_seed(7);
//! let bench = generate(&arch, &config)?;
//! assert_eq!(bench.optimal_swaps(), 2);
//! assert!(bench.circuit().two_qubit_gate_count() >= 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmark;
pub mod certificate;
pub mod generator;
pub mod manifest;
pub mod queko;
pub mod suite;

pub use benchmark::{QubikosCircuit, Section};
pub use certificate::{verify_certificate, CertificateError};
pub use generator::{generate, GenerateError, GeneratorConfig};
pub use manifest::{
    content_hash, instance_file_name, shard_file_name, shard_spans, InstanceRecord, RootIndex,
    ShardManifest, ShardRecord, SuiteManifest, DEFAULT_SHARD_SIZE, MANIFEST_FILE, MANIFEST_FORMAT,
    SHARD_DIR, V1_MANIFEST_FORMAT,
};
pub use queko::{generate_queko, QuekoCircuit, QuekoConfig, QuekoError};
pub use suite::{generate_suite, ExperimentPoint, SuiteConfig};
