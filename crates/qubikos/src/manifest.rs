//! The on-disk suite manifest: the schema that makes a benchmark suite a
//! persistent, verifiable corpus instead of something regenerated inside
//! every binary on every run.
//!
//! Since format 2 a stored suite is **sharded**: `manifest.json` is a small
//! [`RootIndex`] naming the device, the [`SuiteConfig`], and one
//! [`ShardRecord`] per shard manifest under `shards/`. Each shard manifest
//! ([`ShardManifest`]) carries the [`InstanceRecord`]s of a contiguous slice
//! of the suite grid, and the root index records the **content hash of the
//! shard manifest's bytes**, extending the integrity chain root → shard →
//! instance: loaders refuse silently-edited shard manifests exactly as they
//! refuse edited circuits. Keeping the root index O(shards) instead of
//! O(instances) is what lets a million-instance corpus open, stream, and
//! resume without ever materializing more than one shard of records.
//!
//! Format 1 (one monolithic [`SuiteManifest`] holding every record) is still
//! read transparently as a single-shard corpus; the schema type is kept here
//! for that loader and for fixtures.
//!
//! Per-instance fields are unchanged: each [`InstanceRecord`] carries the
//! instance's derived seed, its designed (optimal) SWAP count, its file
//! name, and the content hash of its QASM text. The hash is the suite's
//! integrity anchor: loaders refuse silently-edited circuits, and the result
//! cache keys evaluated routings by it (`results/<tool>/<hash>`), so a
//! re-run only routes circuits whose bytes it has never seen.
//!
//! This module owns only the schema and the hash; all filesystem traffic
//! lives in `qubikos_bench::store`.

use crate::suite::{ExperimentPoint, SuiteConfig};
use qubikos_arch::DeviceKind;
use qubikos_circuit::to_qasm;
use serde::{Deserialize, Serialize};

/// Version of the on-disk manifest schema. Bumped on incompatible changes so
/// loaders can fail with a clear message instead of a field error. Format 2
/// is the sharded layout; format 1 (monolithic) is still readable.
pub const MANIFEST_FORMAT: u32 = 2;

/// The legacy monolithic manifest format, read transparently as a
/// single-shard corpus.
pub const V1_MANIFEST_FORMAT: u32 = 1;

/// Name of the manifest file (the root index since format 2) inside a suite
/// directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Subdirectory of a suite holding the shard manifests.
pub const SHARD_DIR: &str = "shards";

/// Default number of instances per shard. Large enough that shard-manifest
/// overhead is negligible, small enough that one resident shard of
/// `ExperimentPoint`s stays far below any laptop's memory on every supported
/// device.
pub const DEFAULT_SHARD_SIZE: usize = 256;

/// One instance of a stored suite.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstanceRecord {
    /// The designed (provably optimal) SWAP count.
    pub swap_count: usize,
    /// Index of the instance within its SWAP-count cell.
    pub instance: usize,
    /// The derived seed the instance was generated from
    /// ([`SuiteConfig::instance_seed`]).
    pub seed: u64,
    /// Number of two-qubit gates in the circuit.
    pub two_qubit_gates: usize,
    /// File name of the instance's QASM export, relative to the suite
    /// directory.
    pub file: String,
    /// Content hash of the QASM text (see [`content_hash`]).
    pub content_hash: String,
}

/// The legacy (format 1) monolithic `manifest.json` of a stored suite: every
/// instance record inline. Still written by nothing, still read by
/// everything — the store opens a v1 manifest as a single-shard corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteManifest {
    /// Schema version ([`V1_MANIFEST_FORMAT`]).
    pub format: u32,
    /// Device the suite was generated for.
    pub device: DeviceKind,
    /// The configuration the suite was generated from. Together with the
    /// per-instance seeds this makes the stored corpus exactly reproducible.
    pub config: SuiteConfig,
    /// One record per instance, in suite (grid) order.
    pub instances: Vec<InstanceRecord>,
}

impl SuiteManifest {
    /// Builds the (v1-shaped) manifest describing `points` (as produced by
    /// [`crate::generate_suite`] for `config` on `device`), computing each
    /// instance's file name and QASM content hash. Used by fixtures and the
    /// back-compat tests; new exports write the sharded layout.
    pub fn describe(device: DeviceKind, config: &SuiteConfig, points: &[ExperimentPoint]) -> Self {
        let instances = points
            .iter()
            .map(|point| InstanceRecord::describe(device, point))
            .collect();
        SuiteManifest {
            format: V1_MANIFEST_FORMAT,
            device,
            config: config.clone(),
            instances,
        }
    }

    /// The record for `(swap_count, instance)`, if the suite contains it.
    pub fn find(&self, swap_count: usize, instance: usize) -> Option<&InstanceRecord> {
        self.instances
            .iter()
            .find(|r| r.swap_count == swap_count && r.instance == instance)
    }
}

/// One shard's entry in the [`RootIndex`]: where the shard manifest lives,
/// how many instances it holds, and the content hash of its bytes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardRecord {
    /// Index of the shard within the suite (shards partition the flat grid
    /// order into contiguous slices).
    pub shard: usize,
    /// Path of the shard manifest, relative to the suite directory.
    pub file: String,
    /// Number of instances the shard holds.
    pub instances: usize,
    /// Content hash of the shard manifest's bytes (see [`content_hash`]) —
    /// the root-to-shard link of the integrity chain.
    pub content_hash: String,
}

/// The format-2 `manifest.json`: a small root index over the shard
/// manifests. O(shards), never O(instances), so opening a million-instance
/// corpus reads kilobytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RootIndex {
    /// Schema version ([`MANIFEST_FORMAT`]).
    pub format: u32,
    /// Device the suite was generated for.
    pub device: DeviceKind,
    /// The configuration the suite was generated from.
    pub config: SuiteConfig,
    /// Number of instances per shard (the last shard may hold fewer).
    pub shard_size: usize,
    /// One record per shard manifest, in shard order.
    pub shards: Vec<ShardRecord>,
}

impl RootIndex {
    /// Total instances across all shards.
    pub fn total_instances(&self) -> usize {
        self.shards.iter().map(|s| s.instances).sum()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

/// One shard manifest under `shards/`: the instance records of a contiguous
/// slice of the suite grid.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardManifest {
    /// Index of the shard within the suite.
    pub shard: usize,
    /// The shard's instance records, in flat grid order.
    pub instances: Vec<InstanceRecord>,
}

/// Canonical file name of shard `shard` within a suite directory.
pub fn shard_file_name(shard: usize) -> String {
    format!("{SHARD_DIR}/shard_{shard:05}.json")
}

/// Partitions `total` instances (in flat grid order) into contiguous shard
/// spans of at most `shard_size` instances each.
///
/// # Panics
///
/// Panics if `shard_size` is zero while `total` is not.
pub fn shard_spans(total: usize, shard_size: usize) -> Vec<std::ops::Range<usize>> {
    if total == 0 {
        return Vec::new();
    }
    assert!(shard_size > 0, "shard size must be positive");
    (0..total.div_ceil(shard_size))
        .map(|shard| shard * shard_size..((shard + 1) * shard_size).min(total))
        .collect()
}

impl InstanceRecord {
    /// Builds the record for one generated point, including the content hash
    /// of its canonical QASM serialization.
    pub fn describe(device: DeviceKind, point: &ExperimentPoint) -> Self {
        InstanceRecord {
            swap_count: point.swap_count,
            instance: point.instance,
            seed: point.seed,
            two_qubit_gates: point.benchmark.circuit().two_qubit_gate_count(),
            file: instance_file_name(device, point.swap_count, point.instance),
            content_hash: content_hash(&to_qasm(point.benchmark.circuit())),
        }
    }
}

/// Canonical QASM file name of one instance within a suite directory.
pub fn instance_file_name(device: DeviceKind, swap_count: usize, instance: usize) -> String {
    format!(
        "{}_swaps{}_inst{}.qasm",
        device.name(),
        swap_count,
        instance
    )
}

/// Content hash of a QASM text: 128-bit FNV-1a, rendered as 32 hex digits.
///
/// FNV-1a is not cryptographic — the hash defends against accidental edits,
/// truncation, and stale files, not against an adversary forging a circuit.
/// 128 bits keep the birthday bound irrelevant at any realistic corpus size
/// (a suite has hundreds of instances, not 2^64).
pub fn content_hash(text: &str) -> String {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut hash = OFFSET;
    for byte in text.as_bytes() {
        hash ^= u128::from(*byte);
        hash = hash.wrapping_mul(PRIME);
    }
    format!("{hash:032x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_suite;

    fn tiny_suite() -> (SuiteConfig, Vec<ExperimentPoint>) {
        let config = SuiteConfig {
            swap_counts: vec![1, 2],
            circuits_per_count: 2,
            two_qubit_gates: 16,
            base_seed: 9,
        };
        let arch = DeviceKind::Grid3x3.build();
        let points = generate_suite(&arch, &config).expect("generates");
        (config, points)
    }

    #[test]
    fn content_hash_is_stable_and_sensitive() {
        let a = content_hash("cx q[0], q[1];\n");
        assert_eq!(a, content_hash("cx q[0], q[1];\n"));
        assert_eq!(a.len(), 32);
        assert_ne!(a, content_hash("cx q[0], q[2];\n"));
        assert_ne!(a, content_hash(""));
        // Known FNV-1a 128 vector: the empty string hashes to the offset.
        assert_eq!(
            content_hash(""),
            "6c62272e07bb014262b821756295c58d".to_string()
        );
    }

    #[test]
    fn describe_covers_every_instance() {
        let (config, points) = tiny_suite();
        let manifest = SuiteManifest::describe(DeviceKind::Grid3x3, &config, &points);
        assert_eq!(manifest.format, V1_MANIFEST_FORMAT);
        assert_eq!(manifest.instances.len(), 4);
        assert_eq!(manifest.config, config);
        for (record, point) in manifest.instances.iter().zip(&points) {
            assert_eq!(record.swap_count, point.swap_count);
            assert_eq!(record.seed, point.seed);
            assert_eq!(
                record.content_hash,
                content_hash(&to_qasm(point.benchmark.circuit()))
            );
            assert!(record.file.ends_with(".qasm"));
            assert!(record.file.contains(&format!("swaps{}", point.swap_count)));
        }
        // All hashes and file names are distinct.
        let hashes: std::collections::BTreeSet<&str> = manifest
            .instances
            .iter()
            .map(|r| r.content_hash.as_str())
            .collect();
        assert_eq!(hashes.len(), 4);
        assert!(manifest.find(1, 0).is_some());
        assert!(manifest.find(3, 0).is_none());
    }

    #[test]
    fn manifest_serde_round_trip() {
        let (config, points) = tiny_suite();
        let manifest = SuiteManifest::describe(DeviceKind::Grid3x3, &config, &points);
        let json = serde_json::to_string(&manifest).expect("serialize");
        let back: SuiteManifest = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, manifest);
    }

    #[test]
    fn file_names_are_canonical() {
        assert_eq!(
            instance_file_name(DeviceKind::Aspen4, 5, 3),
            "aspen-4_swaps5_inst3.qasm"
        );
        assert_eq!(shard_file_name(0), "shards/shard_00000.json");
        assert_eq!(shard_file_name(12345), "shards/shard_12345.json");
    }

    #[test]
    fn shard_spans_partition_the_grid() {
        assert!(shard_spans(0, 4).is_empty());
        assert_eq!(shard_spans(1, 4), vec![0..1]);
        assert_eq!(shard_spans(8, 4), vec![0..4, 4..8]);
        assert_eq!(shard_spans(9, 4), vec![0..4, 4..8, 8..9]);
        // Spans are contiguous and exhaustive for a grab bag of shapes.
        for (total, size) in [(1, 1), (7, 3), (100, 7), (256, 256), (257, 256)] {
            let spans = shard_spans(total, size);
            let mut next = 0;
            for span in &spans {
                assert_eq!(span.start, next);
                assert!(span.len() <= size);
                assert!(!span.is_empty());
                next = span.end;
            }
            assert_eq!(next, total);
        }
    }

    #[test]
    #[should_panic(expected = "shard size must be positive")]
    fn shard_spans_reject_zero_size() {
        shard_spans(5, 0);
    }

    #[test]
    fn root_index_round_trips_and_counts() {
        let (config, points) = tiny_suite();
        let manifest = SuiteManifest::describe(DeviceKind::Grid3x3, &config, &points);
        let shard = ShardManifest {
            shard: 0,
            instances: manifest.instances.clone(),
        };
        let shard_json = serde_json::to_string(&shard).expect("serialize shard");
        let back_shard: ShardManifest = serde_json::from_str(&shard_json).expect("shard back");
        assert_eq!(back_shard, shard);

        let index = RootIndex {
            format: MANIFEST_FORMAT,
            device: DeviceKind::Grid3x3,
            config,
            shard_size: 4,
            shards: vec![ShardRecord {
                shard: 0,
                file: shard_file_name(0),
                instances: shard.instances.len(),
                content_hash: content_hash(&shard_json),
            }],
        };
        assert_eq!(index.total_instances(), 4);
        assert_eq!(index.shard_count(), 1);
        let json = serde_json::to_string(&index).expect("serialize index");
        let back: RootIndex = serde_json::from_str(&json).expect("index back");
        assert_eq!(back, index);
    }
}
