//! The on-disk suite manifest: the schema that makes a benchmark suite a
//! persistent, verifiable corpus instead of something regenerated inside
//! every binary on every run.
//!
//! A stored suite is a directory of one OpenQASM file per instance plus a
//! single `manifest.json` describing the whole grid: the [`SuiteConfig`] it
//! was generated from, the device, and one [`InstanceRecord`] per circuit
//! carrying the instance's derived seed, its designed (optimal) SWAP count,
//! its file name, and the **content hash** of its QASM text. The hash is the
//! suite's integrity anchor: loaders refuse silently-edited circuits, and
//! the result cache keys evaluated routings by it (`results/<tool>/<hash>`),
//! so a re-run only routes circuits whose bytes it has never seen.
//!
//! This module owns only the schema and the hash; all filesystem traffic
//! lives in `qubikos_bench::store`.

use crate::suite::{ExperimentPoint, SuiteConfig};
use qubikos_arch::DeviceKind;
use qubikos_circuit::to_qasm;
use serde::{Deserialize, Serialize};

/// Version of the on-disk manifest schema. Bumped on incompatible changes so
/// loaders can fail with a clear message instead of a field error.
pub const MANIFEST_FORMAT: u32 = 1;

/// Name of the manifest file inside a suite directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// One instance of a stored suite.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstanceRecord {
    /// The designed (provably optimal) SWAP count.
    pub swap_count: usize,
    /// Index of the instance within its SWAP-count cell.
    pub instance: usize,
    /// The derived seed the instance was generated from
    /// ([`SuiteConfig::instance_seed`]).
    pub seed: u64,
    /// Number of two-qubit gates in the circuit.
    pub two_qubit_gates: usize,
    /// File name of the instance's QASM export, relative to the suite
    /// directory.
    pub file: String,
    /// Content hash of the QASM text (see [`content_hash`]).
    pub content_hash: String,
}

/// The `manifest.json` of a stored suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteManifest {
    /// Schema version ([`MANIFEST_FORMAT`]).
    pub format: u32,
    /// Device the suite was generated for.
    pub device: DeviceKind,
    /// The configuration the suite was generated from. Together with the
    /// per-instance seeds this makes the stored corpus exactly reproducible.
    pub config: SuiteConfig,
    /// One record per instance, in suite (grid) order.
    pub instances: Vec<InstanceRecord>,
}

impl SuiteManifest {
    /// Builds the manifest describing `points` (as produced by
    /// [`crate::generate_suite`] for `config` on `device`), computing each
    /// instance's file name and QASM content hash.
    pub fn describe(device: DeviceKind, config: &SuiteConfig, points: &[ExperimentPoint]) -> Self {
        let instances = points
            .iter()
            .map(|point| InstanceRecord::describe(device, point))
            .collect();
        SuiteManifest {
            format: MANIFEST_FORMAT,
            device,
            config: config.clone(),
            instances,
        }
    }

    /// The record for `(swap_count, instance)`, if the suite contains it.
    pub fn find(&self, swap_count: usize, instance: usize) -> Option<&InstanceRecord> {
        self.instances
            .iter()
            .find(|r| r.swap_count == swap_count && r.instance == instance)
    }
}

impl InstanceRecord {
    /// Builds the record for one generated point, including the content hash
    /// of its canonical QASM serialization.
    pub fn describe(device: DeviceKind, point: &ExperimentPoint) -> Self {
        InstanceRecord {
            swap_count: point.swap_count,
            instance: point.instance,
            seed: point.seed,
            two_qubit_gates: point.benchmark.circuit().two_qubit_gate_count(),
            file: instance_file_name(device, point.swap_count, point.instance),
            content_hash: content_hash(&to_qasm(point.benchmark.circuit())),
        }
    }
}

/// Canonical QASM file name of one instance within a suite directory.
pub fn instance_file_name(device: DeviceKind, swap_count: usize, instance: usize) -> String {
    format!(
        "{}_swaps{}_inst{}.qasm",
        device.name(),
        swap_count,
        instance
    )
}

/// Content hash of a QASM text: 128-bit FNV-1a, rendered as 32 hex digits.
///
/// FNV-1a is not cryptographic — the hash defends against accidental edits,
/// truncation, and stale files, not against an adversary forging a circuit.
/// 128 bits keep the birthday bound irrelevant at any realistic corpus size
/// (a suite has hundreds of instances, not 2^64).
pub fn content_hash(text: &str) -> String {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut hash = OFFSET;
    for byte in text.as_bytes() {
        hash ^= u128::from(*byte);
        hash = hash.wrapping_mul(PRIME);
    }
    format!("{hash:032x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_suite;

    fn tiny_suite() -> (SuiteConfig, Vec<ExperimentPoint>) {
        let config = SuiteConfig {
            swap_counts: vec![1, 2],
            circuits_per_count: 2,
            two_qubit_gates: 16,
            base_seed: 9,
        };
        let arch = DeviceKind::Grid3x3.build();
        let points = generate_suite(&arch, &config).expect("generates");
        (config, points)
    }

    #[test]
    fn content_hash_is_stable_and_sensitive() {
        let a = content_hash("cx q[0], q[1];\n");
        assert_eq!(a, content_hash("cx q[0], q[1];\n"));
        assert_eq!(a.len(), 32);
        assert_ne!(a, content_hash("cx q[0], q[2];\n"));
        assert_ne!(a, content_hash(""));
        // Known FNV-1a 128 vector: the empty string hashes to the offset.
        assert_eq!(
            content_hash(""),
            "6c62272e07bb014262b821756295c58d".to_string()
        );
    }

    #[test]
    fn describe_covers_every_instance() {
        let (config, points) = tiny_suite();
        let manifest = SuiteManifest::describe(DeviceKind::Grid3x3, &config, &points);
        assert_eq!(manifest.format, MANIFEST_FORMAT);
        assert_eq!(manifest.instances.len(), 4);
        assert_eq!(manifest.config, config);
        for (record, point) in manifest.instances.iter().zip(&points) {
            assert_eq!(record.swap_count, point.swap_count);
            assert_eq!(record.seed, point.seed);
            assert_eq!(
                record.content_hash,
                content_hash(&to_qasm(point.benchmark.circuit()))
            );
            assert!(record.file.ends_with(".qasm"));
            assert!(record.file.contains(&format!("swaps{}", point.swap_count)));
        }
        // All hashes and file names are distinct.
        let hashes: std::collections::BTreeSet<&str> = manifest
            .instances
            .iter()
            .map(|r| r.content_hash.as_str())
            .collect();
        assert_eq!(hashes.len(), 4);
        assert!(manifest.find(1, 0).is_some());
        assert!(manifest.find(3, 0).is_none());
    }

    #[test]
    fn manifest_serde_round_trip() {
        let (config, points) = tiny_suite();
        let manifest = SuiteManifest::describe(DeviceKind::Grid3x3, &config, &points);
        let json = serde_json::to_string(&manifest).expect("serialize");
        let back: SuiteManifest = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, manifest);
    }

    #[test]
    fn file_names_are_canonical() {
        assert_eq!(
            instance_file_name(DeviceKind::Aspen4, 5, 3),
            "aspen-4_swaps5_inst3.qasm"
        );
    }
}
