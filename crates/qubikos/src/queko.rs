//! QUEKO-style companion benchmarks: known optimal depth, zero SWAPs.
//!
//! The paper positions QUBIKOS against the earlier QUEKO benchmark (Tan &
//! Cong, 2020), whose circuits have a *known-optimal depth* and never need a
//! SWAP — which is why subgraph-isomorphism placement solves them outright
//! and why they cannot measure SWAP-count optimality gaps. This module
//! provides a QUEKO-style generator so the suite can demonstrate that
//! contrast experimentally (see the `qubikos_circuits_defeat_vf2_placement`
//! integration test and the quickstart examples):
//!
//! * every gate is a coupler edge under one fixed mapping, so the optimal
//!   SWAP count is **0** and VF2 placement recovers a SWAP-free layout;
//! * a dependency chain of length `depth` runs through the circuit, so no
//!   transpilation can schedule it in fewer than `depth` two-qubit layers,
//!   while the construction itself achieves exactly `depth`.

use qubikos_arch::Architecture;
use qubikos_circuit::{Circuit, Gate};
use qubikos_layout::Mapping;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Configuration of a QUEKO-style instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuekoConfig {
    /// Target (and provably optimal) two-qubit depth.
    pub depth: usize,
    /// Average number of two-qubit gates per layer beyond the backbone gate,
    /// expressed as a fraction of the device's couplers (0.0 = backbone only).
    pub density: f64,
    /// RNG seed.
    pub seed: u64,
}

impl QuekoConfig {
    /// Creates a configuration with a moderate gate density.
    pub fn new(depth: usize) -> Self {
        QuekoConfig {
            depth,
            density: 0.3,
            seed: 0,
        }
    }

    /// Returns the configuration with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the configuration with a different layer density.
    pub fn with_density(mut self, density: f64) -> Self {
        self.density = density.clamp(0.0, 1.0);
        self
    }
}

/// Errors the QUEKO generator can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuekoError {
    /// Depth zero was requested.
    ZeroDepth,
    /// The device has no couplers to build gates from.
    NoCouplers,
}

impl fmt::Display for QuekoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuekoError::ZeroDepth => write!(f, "QUEKO instances need a depth of at least one"),
            QuekoError::NoCouplers => write!(f, "architecture has no couplers"),
        }
    }
}

impl Error for QuekoError {}

/// A QUEKO-style benchmark: SWAP-free with a known optimal two-qubit depth.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuekoCircuit {
    circuit: Circuit,
    optimal_depth: usize,
    architecture: String,
    reference_mapping: Mapping,
    seed: u64,
}

impl QuekoCircuit {
    /// The logical circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The provably optimal two-qubit depth.
    pub fn optimal_depth(&self) -> usize {
        self.optimal_depth
    }

    /// The optimal SWAP count — always zero, by construction.
    pub fn optimal_swaps(&self) -> usize {
        0
    }

    /// Name of the architecture the benchmark targets.
    pub fn architecture(&self) -> &str {
        &self.architecture
    }

    /// A mapping under which the whole circuit executes without SWAPs.
    pub fn reference_mapping(&self) -> &Mapping {
        &self.reference_mapping
    }

    /// Seed the instance was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl fmt::Display for QuekoCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "QUEKO[{}] optimal_depth={} gates={} seed={}",
            self.architecture,
            self.optimal_depth,
            self.circuit.gate_count(),
            self.seed
        )
    }
}

/// Generates a QUEKO-style instance for `arch`.
///
/// # Errors
///
/// Returns [`QuekoError::ZeroDepth`] for `depth == 0` and
/// [`QuekoError::NoCouplers`] for a device without couplers.
pub fn generate_queko(
    arch: &Architecture,
    config: &QuekoConfig,
) -> Result<QuekoCircuit, QuekoError> {
    if config.depth == 0 {
        return Err(QuekoError::ZeroDepth);
    }
    let couplers: Vec<_> = arch.couplers().collect();
    if couplers.is_empty() {
        return Err(QuekoError::NoCouplers);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let num_qubits = arch.num_qubits();

    // Random bijection program → physical; gates are built on physical
    // couplers and translated back through it.
    let mut phys_of: Vec<usize> = (0..num_qubits).collect();
    phys_of.shuffle(&mut rng);
    let mut prog_at = vec![0usize; num_qubits];
    for (q, &p) in phys_of.iter().enumerate() {
        prog_at[p] = q;
    }

    let mut circuit = Circuit::new(num_qubits);
    let extra_per_layer = (couplers.len() as f64 * config.density).round() as usize;
    // The backbone chain: each layer's backbone gate shares a physical qubit
    // with the previous layer's, forcing the dependency chain (and hence the
    // depth lower bound).
    let mut chain_qubit = {
        let edge = couplers[rng.gen_range(0..couplers.len())];
        edge.u
    };
    for _ in 0..config.depth {
        let mut busy = vec![false; num_qubits];
        // Backbone gate: a coupler incident to the chain qubit.
        let neighbors = arch.neighbors(chain_qubit);
        let next = neighbors[rng.gen_range(0..neighbors.len())];
        circuit.push(Gate::cx(prog_at[chain_qubit], prog_at[next]));
        busy[chain_qubit] = true;
        busy[next] = true;
        chain_qubit = next;
        // Filler gates: random couplers on otherwise idle qubits, so the
        // layer stays parallel and the depth is unchanged.
        for _ in 0..extra_per_layer {
            let edge = couplers[rng.gen_range(0..couplers.len())];
            if busy[edge.u] || busy[edge.v] {
                continue;
            }
            busy[edge.u] = true;
            busy[edge.v] = true;
            circuit.push(Gate::cx(prog_at[edge.u], prog_at[edge.v]));
        }
    }

    debug_assert_eq!(circuit.two_qubit_depth(), config.depth);
    Ok(QuekoCircuit {
        circuit,
        optimal_depth: config.depth,
        architecture: arch.name().to_string(),
        reference_mapping: Mapping::from_prog_to_phys(phys_of, num_qubits),
        seed: config.seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qubikos_arch::devices;
    use qubikos_layout::{validate_routing, vf2_placement, Router, SabreRouter};

    #[test]
    fn rejects_bad_configs() {
        let arch = devices::grid(3, 3);
        assert_eq!(
            generate_queko(&arch, &QuekoConfig::new(0)).unwrap_err(),
            QuekoError::ZeroDepth
        );
        assert!(!QuekoError::NoCouplers.to_string().is_empty());
    }

    #[test]
    fn depth_matches_design_and_mapping_is_swap_free() {
        for (arch, depth) in [(devices::grid(3, 3), 5), (devices::aspen4(), 12)] {
            let queko =
                generate_queko(&arch, &QuekoConfig::new(depth).with_seed(3)).expect("generates");
            assert_eq!(queko.optimal_depth(), depth);
            assert_eq!(queko.optimal_swaps(), 0);
            assert_eq!(queko.circuit().two_qubit_depth(), depth);
            // Every gate is executable under the reference mapping.
            let mapping = queko.reference_mapping();
            for gate in queko.circuit().two_qubit_gates() {
                let (a, b) = gate.qubit_pair().expect("two-qubit");
                assert!(arch.are_coupled(mapping.physical(a), mapping.physical(b)));
            }
        }
    }

    #[test]
    fn vf2_placement_solves_queko_but_not_qubikos() {
        // The contrast the paper draws: QUEKO is solved outright by subgraph
        // isomorphism, QUBIKOS never is.
        let arch = devices::aspen4();
        let queko = generate_queko(&arch, &QuekoConfig::new(8).with_seed(1)).expect("generates");
        assert!(vf2_placement(queko.circuit(), &arch).is_some());

        let qubikos = crate::generate(&arch, &crate::GeneratorConfig::new(1, 40).with_seed(1))
            .expect("generates");
        assert!(vf2_placement(qubikos.circuit(), &arch).is_none());
    }

    #[test]
    fn sabre_routes_queko_without_swaps_given_the_mapping() {
        let arch = devices::grid(3, 3);
        let queko = generate_queko(&arch, &QuekoConfig::new(6).with_seed(2)).expect("generates");
        let router = SabreRouter::default();
        let routed = router
            .route_with_initial_mapping(queko.circuit(), &arch, queko.reference_mapping())
            .expect("fits");
        validate_routing(queko.circuit(), &arch, &routed).expect("valid");
        assert_eq!(routed.swap_count(), 0);
        // Even with its own placement search the router should find a
        // SWAP-free embedding for such a small instance.
        let routed = router.route(queko.circuit(), &arch).expect("fits");
        assert_eq!(routed.swap_count(), 0);
    }

    #[test]
    fn density_controls_gate_count() {
        let arch = devices::sycamore54();
        let sparse = generate_queko(&arch, &QuekoConfig::new(10).with_density(0.0).with_seed(4))
            .expect("generates");
        let dense = generate_queko(&arch, &QuekoConfig::new(10).with_density(0.8).with_seed(4))
            .expect("generates");
        assert_eq!(sparse.circuit().two_qubit_gate_count(), 10);
        assert!(
            dense.circuit().two_qubit_gate_count() > 3 * sparse.circuit().two_qubit_gate_count()
        );
        assert_eq!(dense.circuit().two_qubit_depth(), 10);
    }

    #[test]
    fn deterministic_and_displayable() {
        let arch = devices::grid(3, 3);
        let a = generate_queko(&arch, &QuekoConfig::new(4).with_seed(9)).expect("generates");
        let b = generate_queko(&arch, &QuekoConfig::new(4).with_seed(9)).expect("generates");
        assert_eq!(a, b);
        assert!(a.to_string().contains("optimal_depth=4"));
        let json = serde_json::to_string(&a).expect("serialize");
        let back: QuekoCircuit = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, a);
    }
}
