//! `QUBIKOS_ORACLE_ROWS` override for devices built through
//! `DeviceKind::build` (the CLI chokepoint).
//!
//! Environment variables are process-global, so every scenario lives in one
//! test function — this file is its own test binary precisely so the
//! mutation cannot race the rest of the arch suite.

use qubikos_arch::devices::{self, DeviceKind, ORACLE_ROWS_ENV};
use qubikos_graph::OracleKind;

#[test]
fn oracle_rows_env_overrides_cache_capacity_for_cli_built_devices() {
    let capacity_of = |kind: DeviceKind| {
        kind.build()
            .oracle()
            .row_tier()
            .expect("cached oracle")
            .row_cache_capacity()
    };

    // Unset: the default capacity.
    std::env::remove_var(ORACLE_ROWS_ENV);
    assert_eq!(devices::oracle_rows_override(), None);
    assert_eq!(
        capacity_of(DeviceKind::Eagle127),
        qubikos_graph::default_row_capacity(127)
    );

    // Set: cached devices pick the capacity up; distances stay exact.
    std::env::set_var(ORACLE_ROWS_ENV, "17");
    assert_eq!(devices::oracle_rows_override(), Some(17));
    let eagle = DeviceKind::Eagle127.build();
    assert_eq!(eagle.oracle_kind(), OracleKind::Landmark);
    assert_eq!(
        eagle
            .oracle()
            .row_tier()
            .expect("cached")
            .row_cache_capacity(),
        17
    );
    let reference = devices::eagle127(); // direct builder: default capacity
    for q in [0, 63, 126] {
        assert_eq!(
            &eagle.distance_row(q)[..],
            &reference.distance_row(q)[..],
            "capacity must never change a distance"
        );
    }

    // Dense devices ignore the override entirely.
    let dense = DeviceKind::Grid3x3.build();
    assert_eq!(dense.oracle_kind(), OracleKind::Dense);
    assert!(dense.oracle().row_tier().is_none());

    // Invalid values (non-numeric, zero, negative) are ignored, not fatal.
    for bad in ["banana", "0", "-3", ""] {
        std::env::set_var(ORACLE_ROWS_ENV, bad);
        assert_eq!(devices::oracle_rows_override(), None, "value {bad:?}");
    }
    std::env::set_var(ORACLE_ROWS_ENV, " 8 "); // whitespace is trimmed
    assert_eq!(devices::oracle_rows_override(), Some(8));

    std::env::remove_var(ORACLE_ROWS_ENV);
}
