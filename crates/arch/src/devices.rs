//! Builders for the device topologies used in the paper's evaluation.
//!
//! | Device | Qubits | Structure |
//! |---|---|---|
//! | `line(n)` | n | 1-D chain (Fig. 1(d) of the paper) |
//! | `grid(rows, cols)` | rows·cols | square lattice; the paper's "3x3 grid" optimality-study device is `grid(3, 3)` |
//! | [`aspen4`] | 16 | two octagonal rings bridged by two couplers (Rigetti Aspen-4) |
//! | [`sycamore54`] | 54 | diagonal square lattice (Google Sycamore) |
//! | [`rochester53`] | 53 | sparse heavy-hexagon-style lattice (IBM Rochester) |
//! | [`eagle127`] | 127 | heavy-hexagon lattice (IBM Eagle / ibm_washington layout pattern) |
//! | [`osprey433`] | 433 | heavy-hexagon lattice (IBM Osprey scale, beyond the paper's evaluation) |
//!
//! Rochester and Eagle are generated from the published heavy-hex pattern
//! (long rows of qubits joined by sparse bridge qubits); the Rochester
//! parameters are chosen to match the device's qubit count and average
//! degree rather than its exact edge list (see DESIGN.md, substitution 6).

use crate::architecture::Architecture;
use qubikos_graph::{generators, Graph};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// The devices used by the paper's experiments, as an enumerable handle.
///
/// Having an enum (rather than only free functions) lets experiment configs
/// be serialized and iterated (`DeviceKind::ALL`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// 3×3 grid used in the optimality study.
    Grid3x3,
    /// Rigetti Aspen-4, 16 qubits.
    Aspen4,
    /// Google Sycamore, 54 qubits.
    Sycamore54,
    /// IBM Rochester, 53 qubits.
    Rochester53,
    /// IBM Eagle, 127 qubits.
    Eagle127,
    /// IBM Osprey, 433 qubits.
    Osprey433,
}

impl DeviceKind {
    /// Every device, in the order the paper presents them (Osprey, beyond
    /// the paper's evaluation, last).
    pub const ALL: [DeviceKind; 6] = [
        DeviceKind::Grid3x3,
        DeviceKind::Aspen4,
        DeviceKind::Sycamore54,
        DeviceKind::Rochester53,
        DeviceKind::Eagle127,
        DeviceKind::Osprey433,
    ];

    /// The four large architectures of the Figure-4 evaluation (everything
    /// except the 3×3 grid).
    pub const EVALUATION: [DeviceKind; 4] = [
        DeviceKind::Aspen4,
        DeviceKind::Sycamore54,
        DeviceKind::Rochester53,
        DeviceKind::Eagle127,
    ];

    /// Builds the architecture.
    ///
    /// This is the chokepoint every experiment pipeline builds devices
    /// through, so it honors the [`ORACLE_ROWS_ENV`] override: when
    /// `QUBIKOS_ORACLE_ROWS` is set to a positive integer, devices with a
    /// cached (sparse or landmark) oracle are rebuilt with that row-cache
    /// capacity. Dense devices and unset/invalid values are unaffected —
    /// capacity is a performance knob that can never change a distance.
    pub fn build(self) -> Architecture {
        let arch = match self {
            DeviceKind::Grid3x3 => grid(3, 3),
            DeviceKind::Aspen4 => aspen4(),
            DeviceKind::Sycamore54 => sycamore54(),
            DeviceKind::Rochester53 => rochester53(),
            DeviceKind::Eagle127 => eagle127(),
            DeviceKind::Osprey433 => osprey433(),
        };
        match (oracle_rows_override(), arch.oracle_kind()) {
            (Some(rows), kind) if kind != qubikos_graph::OracleKind::Dense => {
                Architecture::with_oracle_capacity(
                    arch.name(),
                    arch.coupling_graph().clone(),
                    kind,
                    Some(rows),
                )
                .expect("rebuilt from a valid architecture")
            }
            _ => arch,
        }
    }

    /// Stable lower-case name (matches `Architecture::name`).
    pub fn name(self) -> &'static str {
        match self {
            DeviceKind::Grid3x3 => "grid-3x3",
            DeviceKind::Aspen4 => "aspen-4",
            DeviceKind::Sycamore54 => "sycamore-54",
            DeviceKind::Rochester53 => "rochester-53",
            DeviceKind::Eagle127 => "eagle-127",
            DeviceKind::Osprey433 => "osprey-433",
        }
    }

    /// Every spelling [`Self::parse`] accepts, for error messages and
    /// did-you-mean suggestions.
    const ALIASES: [(&'static str, DeviceKind); 17] = [
        ("grid", DeviceKind::Grid3x3),
        ("grid3x3", DeviceKind::Grid3x3),
        ("grid-3x3", DeviceKind::Grid3x3),
        ("aspen4", DeviceKind::Aspen4),
        ("aspen-4", DeviceKind::Aspen4),
        ("sycamore", DeviceKind::Sycamore54),
        ("sycamore54", DeviceKind::Sycamore54),
        ("sycamore-54", DeviceKind::Sycamore54),
        ("rochester", DeviceKind::Rochester53),
        ("rochester53", DeviceKind::Rochester53),
        ("rochester-53", DeviceKind::Rochester53),
        ("eagle", DeviceKind::Eagle127),
        ("eagle127", DeviceKind::Eagle127),
        ("eagle-127", DeviceKind::Eagle127),
        ("osprey", DeviceKind::Osprey433),
        ("osprey433", DeviceKind::Osprey433),
        ("osprey-433", DeviceKind::Osprey433),
    ];

    /// Parses a device name as accepted by the experiment harness CLIs
    /// (case-insensitive; canonical names plus short aliases like
    /// `"eagle"`).
    ///
    /// # Errors
    ///
    /// Returns a [`DeviceParseError`] carrying the rejected input and, when
    /// a known spelling is close, a did-you-mean suggestion.
    pub fn parse(name: &str) -> Result<DeviceKind, DeviceParseError> {
        let lower = name.to_ascii_lowercase();
        if let Some(&(_, kind)) = Self::ALIASES.iter().find(|(alias, _)| *alias == lower) {
            return Ok(kind);
        }
        let suggestion = Self::ALIASES
            .iter()
            .map(|&(alias, _)| (alias, edit_distance(&lower, alias)))
            .min_by_key(|&(alias, d)| (d, alias))
            .filter(|&(alias, d)| d <= 2.max(alias.len() / 3))
            .map(|(alias, _)| alias);
        Err(DeviceParseError {
            input: name.to_string(),
            suggestion,
        })
    }
}

/// Environment variable overriding the distance-oracle row-cache capacity
/// for devices built through [`DeviceKind::build`] (the CLI path). Positive
/// integers only; anything else is ignored.
pub const ORACLE_ROWS_ENV: &str = "QUBIKOS_ORACLE_ROWS";

/// The parsed [`ORACLE_ROWS_ENV`] value, if set to a positive integer.
pub fn oracle_rows_override() -> Option<usize> {
    std::env::var(ORACLE_ROWS_ENV)
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&rows| rows > 0)
}

/// Error from [`DeviceKind::parse`]: the input was not a known device name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceParseError {
    input: String,
    suggestion: Option<&'static str>,
}

impl DeviceParseError {
    /// The rejected input, verbatim.
    pub fn input(&self) -> &str {
        &self.input
    }

    /// The closest known spelling, when one is close enough to plausibly be
    /// what the user meant.
    pub fn suggestion(&self) -> Option<&'static str> {
        self.suggestion
    }

    /// Canonical names of every known device, for "expected one of" help
    /// text.
    pub fn known_devices() -> impl Iterator<Item = &'static str> {
        DeviceKind::ALL.iter().map(|k| k.name())
    }
}

impl fmt::Display for DeviceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown device `{}`", self.input)?;
        if let Some(suggestion) = self.suggestion {
            write!(f, " (did you mean `{suggestion}`?)")?;
        }
        Ok(())
    }
}

impl Error for DeviceParseError {}

/// Levenshtein edit distance, for did-you-mean suggestions on the handful of
/// short device aliases (the O(a·b) rolling-row version is plenty).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// 1-D chain of `n >= 2` qubits.
///
/// # Panics
///
/// Panics if `n < 2` (a single qubit cannot host two-qubit gates).
pub fn line(n: usize) -> Architecture {
    assert!(n >= 2, "line architecture needs at least 2 qubits");
    Architecture::new(format!("line-{n}"), generators::path_graph(n))
        .expect("path graph is connected")
}

/// `rows × cols` square lattice.
///
/// # Panics
///
/// Panics if the grid would have fewer than 2 qubits.
pub fn grid(rows: usize, cols: usize) -> Architecture {
    assert!(
        rows * cols >= 2,
        "grid architecture needs at least 2 qubits"
    );
    Architecture::new(
        format!("grid-{rows}x{cols}"),
        generators::grid_graph(rows, cols),
    )
    .expect("grid graph is connected")
}

/// Rigetti Aspen-4: two octagonal rings of 8 qubits bridged by two couplers.
pub fn aspen4() -> Architecture {
    let mut g = Graph::with_nodes(16);
    // Two octagons: 0..8 and 8..16.
    for ring in [0usize, 8] {
        for i in 0..8 {
            g.add_edge(ring + i, ring + (i + 1) % 8);
        }
    }
    // Inter-ring couplers (the Aspen lattice joins neighbouring octagons on
    // two adjacent corners).
    g.add_edge(1, 14);
    g.add_edge(2, 15);
    Architecture::new("aspen-4", g).expect("aspen-4 is connected")
}

/// Google Sycamore: 54 qubits on a diagonal square lattice (9 rows × 6
/// columns, every qubit coupled to up to four diagonal neighbours).
pub fn sycamore54() -> Architecture {
    const ROWS: usize = 9;
    const COLS: usize = 6;
    let mut g = Graph::with_nodes(ROWS * COLS);
    let id = |r: usize, c: usize| r * COLS + c;
    for r in 0..ROWS - 1 {
        for c in 0..COLS {
            // Each row couples diagonally to the next; the offset alternates
            // so that interior qubits reach degree 4.
            g.add_edge(id(r, c), id(r + 1, c));
            if r % 2 == 0 {
                if c > 0 {
                    g.add_edge(id(r, c), id(r + 1, c - 1));
                }
            } else if c + 1 < COLS {
                g.add_edge(id(r, c), id(r + 1, c + 1));
            }
        }
    }
    Architecture::new("sycamore-54", g).expect("sycamore is connected")
}

/// Heavy-hex style lattice: `long_rows` rows of `row_len` qubits joined by
/// bridge qubits at alternating column offsets.
///
/// The first and last long rows are one qubit shorter (missing their last and
/// first column respectively), matching IBM's published heavy-hex layouts.
/// Bridge rows between long rows `i` and `i+1` place one bridge qubit every
/// fourth column, starting at column 0 for even `i` and column 2 for odd `i`.
///
/// # Panics
///
/// Panics if `long_rows < 2` or `row_len < 3`.
pub fn heavy_hex(long_rows: usize, row_len: usize) -> Graph {
    assert!(long_rows >= 2, "heavy-hex needs at least 2 long rows");
    assert!(row_len >= 3, "heavy-hex rows need at least 3 qubits");
    // Column ranges per long row: first row drops the last column, last row
    // drops the first column, interior rows are full.
    let row_cols = |r: usize| -> (usize, usize) {
        if r == 0 {
            (0, row_len - 1)
        } else if r == long_rows - 1 {
            (1, row_len)
        } else {
            (0, row_len)
        }
    };

    let mut g = Graph::new();
    // Assign ids row by row: long row, then its bridge row.
    let mut row_start = Vec::with_capacity(long_rows);
    let mut bridges: Vec<Vec<(usize, usize)>> = Vec::new(); // (bridge node, column)
    for r in 0..long_rows {
        let (lo, hi) = row_cols(r);
        let start = g.node_count();
        row_start.push((start, lo));
        for _ in lo..hi {
            g.add_node();
        }
        // Edges along the long row.
        for c in lo..hi.saturating_sub(1) {
            let a = start + (c - lo);
            g.add_edge(a, a + 1);
        }
        // Bridge row below (except after the last long row). A bridge is only
        // placed when both adjacent long rows have a qubit in its column, so
        // every bridge has degree exactly two.
        if r + 1 < long_rows {
            let offset = if r % 2 == 0 { 0 } else { 2 };
            let mut row_bridges = Vec::new();
            let mut c = offset;
            while c < row_len {
                let fits = [r, r + 1].iter().all(|&long| {
                    let (rlo, rhi) = row_cols(long);
                    c >= rlo && c < rhi
                });
                if fits {
                    let b = g.add_node();
                    row_bridges.push((b, c));
                }
                c += 4;
            }
            bridges.push(row_bridges);
        }
    }
    // Connect bridges to the long rows above and below.
    for (r, row_bridges) in bridges.iter().enumerate() {
        for &(b, c) in row_bridges {
            for long in [r, r + 1] {
                let (start, lo) = row_start[long];
                g.add_edge(b, start + (c - lo));
            }
        }
    }
    g
}

/// IBM Rochester: 53 qubits, modelled as a sparse heavy-hexagon-style lattice
/// (5 long rows of 9 qubits, 2 bridge qubits between consecutive rows).
///
/// The exact Rochester edge list is not reproduced; the model matches the
/// device's qubit count and its sparse, low-symmetry connectivity (average
/// degree ≈ 2.2 versus Sycamore's ≈ 3.5), which is the property the paper's
/// analysis attributes the larger optimality gap to.
pub fn rochester53() -> Architecture {
    const LONG_ROWS: usize = 5;
    const ROW_LEN: usize = 9;
    let mut g = Graph::new();
    let mut row_start = Vec::new();
    let mut bridge_rows: Vec<Vec<(usize, usize)>> = Vec::new();
    for r in 0..LONG_ROWS {
        let start = g.node_count();
        row_start.push(start);
        for _ in 0..ROW_LEN {
            g.add_node();
        }
        for c in 0..ROW_LEN - 1 {
            g.add_edge(start + c, start + c + 1);
        }
        if r + 1 < LONG_ROWS {
            let cols: [usize; 2] = if r % 2 == 0 { [0, 8] } else { [4, 6] };
            let mut row_bridges = Vec::new();
            for c in cols {
                let b = g.add_node();
                row_bridges.push((b, c));
            }
            bridge_rows.push(row_bridges);
        }
    }
    for (r, row_bridges) in bridge_rows.iter().enumerate() {
        for &(b, c) in row_bridges {
            g.add_edge(b, row_start[r] + c);
            g.add_edge(b, row_start[r + 1] + c);
        }
    }
    Architecture::new("rochester-53", g).expect("rochester is connected")
}

/// IBM Eagle: 127 qubits on the heavy-hexagon lattice (the ibm_washington
/// layout pattern: seven long rows of 14/15 qubits joined by 24 bridge
/// qubits).
pub fn eagle127() -> Architecture {
    let g = heavy_hex(7, 15);
    debug_assert_eq!(g.node_count(), 127);
    Architecture::new("eagle-127", g).expect("eagle is connected")
}

/// IBM Osprey scale: 433 qubits on the heavy-hexagon lattice (thirteen long
/// rows of 26/27 qubits joined by 84 bridge qubits).
///
/// Osprey is beyond the paper's evaluation; it exists here as the scaling
/// stress device for the sparse distance oracle (ROADMAP item 2) — a dense
/// distance matrix for it would hold 433² ≈ 187k entries, none of which a
/// route ever needs more than a few rows of.
pub fn osprey433() -> Architecture {
    let g = heavy_hex(13, 27);
    debug_assert_eq!(g.node_count(), 433);
    Architecture::new("osprey-433", g).expect("osprey is connected")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_grid() {
        assert_eq!(line(5).num_qubits(), 5);
        assert_eq!(line(5).diameter(), 4);
        let g = grid(3, 3);
        assert_eq!(g.num_qubits(), 9);
        assert_eq!(g.num_couplers(), 12);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn line_too_small_panics() {
        let _ = line(1);
    }

    #[test]
    fn aspen4_matches_published_size() {
        let a = aspen4();
        assert_eq!(a.num_qubits(), 16);
        assert_eq!(a.num_couplers(), 18);
        assert!(a.coupling_graph().is_connected());
        assert_eq!(a.coupling_graph().max_degree(), 3);
        // Every qubit participates in its ring, so min degree is 2.
        assert!(a.coupling_graph().nodes().all(|n| a.degree(n) >= 2));
    }

    #[test]
    fn sycamore_is_dense_grid_like() {
        let s = sycamore54();
        assert_eq!(s.num_qubits(), 54);
        assert!(s.coupling_graph().is_connected());
        assert_eq!(s.coupling_graph().max_degree(), 4);
        // Dense connectivity: clearly above the heavy-hex average degree.
        assert!(s.average_degree() > 2.9, "got {}", s.average_degree());
    }

    #[test]
    fn rochester_is_sparse() {
        let r = rochester53();
        assert_eq!(r.num_qubits(), 53);
        assert!(r.coupling_graph().is_connected());
        assert_eq!(r.coupling_graph().max_degree(), 3);
        assert!(r.average_degree() < 2.5, "got {}", r.average_degree());
        // The paper's explanation hinges on Rochester being sparser than Sycamore.
        assert!(r.average_degree() < sycamore54().average_degree());
    }

    #[test]
    fn eagle_matches_published_size() {
        let e = eagle127();
        assert_eq!(e.num_qubits(), 127);
        assert!(e.coupling_graph().is_connected());
        assert_eq!(e.coupling_graph().max_degree(), 3);
        // ibm_washington has 142-144 couplers depending on calibration; the
        // generated lattice should be in that ballpark.
        assert!(
            (130..=150).contains(&e.num_couplers()),
            "got {}",
            e.num_couplers()
        );
    }

    #[test]
    fn heavy_hex_generic_shapes() {
        let g = heavy_hex(3, 5);
        assert!(g.is_connected());
        assert!(g.max_degree() <= 3);
        // Every bridge qubit (degree-2 by construction) joins two long rows.
        let g = heavy_hex(4, 7);
        assert!(g.is_connected());
        assert!(g.max_degree() <= 3);
    }

    #[test]
    #[should_panic(expected = "at least 2 long rows")]
    fn heavy_hex_too_few_rows_panics() {
        let _ = heavy_hex(1, 5);
    }

    #[test]
    fn device_kind_roundtrip() {
        for kind in DeviceKind::ALL {
            let arch = kind.build();
            assert_eq!(arch.name(), kind.name());
            assert_eq!(DeviceKind::parse(kind.name()), Ok(kind));
        }
        assert_eq!(DeviceKind::parse("aspen4"), Ok(DeviceKind::Aspen4));
        assert_eq!(DeviceKind::parse("EAGLE"), Ok(DeviceKind::Eagle127));
        assert_eq!(DeviceKind::parse("osprey"), Ok(DeviceKind::Osprey433));
    }

    #[test]
    fn parse_errors_suggest_close_spellings() {
        let err = DeviceKind::parse("egale").unwrap_err();
        assert_eq!(err.input(), "egale");
        assert_eq!(err.suggestion(), Some("eagle"));
        assert!(err.to_string().contains("did you mean `eagle`?"));

        let err = DeviceKind::parse("rochster53").unwrap_err();
        assert_eq!(err.suggestion(), Some("rochester53"));

        // Nothing plausible: no suggestion, but the input is echoed.
        let err = DeviceKind::parse("zzzzzzzzzzzz").unwrap_err();
        assert_eq!(err.suggestion(), None);
        assert!(err.to_string().contains("zzzzzzzzzzzz"));
        assert!(!err.to_string().contains("did you mean"));

        let known: Vec<&str> = DeviceParseError::known_devices().collect();
        assert_eq!(known.len(), DeviceKind::ALL.len());
        assert!(known.contains(&"osprey-433"));
    }

    #[test]
    fn osprey_matches_design() {
        let o = osprey433();
        assert_eq!(o.num_qubits(), 433);
        assert!(o.coupling_graph().is_connected());
        // heavy_hex(13, 27): 11 full rows of 27 + 2 trimmed rows of 26 long
        // qubits, 84 degree-2 bridges. Long-row edges: 2·25 + 11·26 = 336;
        // bridge edges: 2 per bridge = 168.
        assert_eq!(o.num_couplers(), 336 + 168);
        let graph = o.coupling_graph();
        assert_eq!(graph.max_degree(), 3);
        let mut degree_histogram = [0usize; 4];
        for q in graph.nodes() {
            degree_histogram[graph.degree(q)] += 1;
        }
        // Degree-1: row-end qubits without a bridge (2 of the 26 row ends).
        // Degree-2: the 84 bridges, the 24 bridged row ends, and interior
        // long-row qubits with no bridge. Degree-3: interior long-row qubits
        // under one of the remaining 144 bridge attachments. No isolated or
        // higher-degree qubits exist on a heavy-hex lattice.
        assert_eq!(degree_histogram, [0, 2, 287, 144]);
        // Diameter spot-check: corner-to-corner must traverse every row band.
        let d = o.diameter();
        assert!((40..=80).contains(&d), "diameter {d}");
        // Average degree stays heavy-hex sparse.
        assert!(o.average_degree() < 2.5, "got {}", o.average_degree());
    }

    #[test]
    fn large_devices_route_through_the_landmark_oracle() {
        use qubikos_graph::OracleKind;
        assert_eq!(eagle127().oracle_kind(), OracleKind::Landmark);
        assert_eq!(osprey433().oracle_kind(), OracleKind::Landmark);
        assert_eq!(rochester53().oracle_kind(), OracleKind::Dense);
        assert_eq!(sycamore54().oracle_kind(), OracleKind::Dense);
        // The landmark tier is sized by sqrt(n).
        let eagle = eagle127();
        let landmark = eagle.oracle().landmark().expect("landmark-backed");
        assert_eq!(landmark.index().landmark_count(), 12);
    }

    #[test]
    fn evaluation_devices_match_paper_sizes() {
        let sizes: Vec<usize> = DeviceKind::EVALUATION
            .iter()
            .map(|k| k.build().num_qubits())
            .collect();
        assert_eq!(sizes, vec![16, 54, 53, 127]);
    }
}
