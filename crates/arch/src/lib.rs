//! Device coupling graphs for the QUBIKOS benchmark suite.
//!
//! A quantum layout-synthesis problem is defined against an [`Architecture`]:
//! a named, connected coupling graph whose nodes are *physical* qubits and
//! whose edges are the pairs on which two-qubit gates can execute, together
//! with a distance oracle (the quantity every SWAP router scores against) —
//! a dense all-pairs matrix for small devices, an on-demand sparse BFS
//! oracle for routing-scale ones, selected automatically by qubit count.
//!
//! The [`devices`] module provides the four architectures evaluated in the
//! paper — Rigetti Aspen-4 (16 qubits), Google Sycamore (54), IBM Rochester
//! (53) and IBM Eagle (127) — plus an Osprey-scale 433-qubit heavy-hex
//! lattice for oracle scaling studies and the line and grid topologies used
//! in the optimality study and the test suites. Rochester, Eagle and Osprey
//! are heavy-hex style lattices generated from the published layout pattern;
//! see DESIGN.md for the exact modelling notes.
//!
//! # Example
//!
//! ```
//! use qubikos_arch::devices;
//!
//! let aspen = devices::aspen4();
//! assert_eq!(aspen.num_qubits(), 16);
//! assert!(aspen.coupling_graph().is_connected());
//!
//! let eagle = devices::eagle127();
//! assert_eq!(eagle.num_qubits(), 127);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod architecture;
pub mod devices;

pub use architecture::{Architecture, ArchitectureError};
pub use devices::{DeviceKind, DeviceParseError};
