//! The [`Architecture`] type.

use qubikos_graph::{DistanceOracle, DistanceRow, Edge, Graph, NodeId, OracleKind, OracleStats};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Index of a physical qubit on a device.
pub type PhysicalQubit = NodeId;

/// Error building an [`Architecture`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchitectureError {
    /// The coupling graph had no qubits.
    Empty,
    /// The coupling graph was not connected; routing between the listed
    /// components would be impossible.
    Disconnected {
        /// Number of connected components found.
        components: usize,
    },
}

impl fmt::Display for ArchitectureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchitectureError::Empty => write!(f, "coupling graph has no qubits"),
            ArchitectureError::Disconnected { components } => write!(
                f,
                "coupling graph is disconnected ({components} components); routing is impossible"
            ),
        }
    }
}

impl Error for ArchitectureError {}

/// A named device: a connected coupling graph plus its distance oracle.
///
/// [`Architecture::new`] picks the oracle automatically: devices up to
/// [`qubikos_graph::DENSE_ORACLE_MAX_NODES`] qubits get the eager dense
/// matrix, larger ones (Eagle-127, Osprey-433) the landmark-backed
/// on-demand BFS oracle — a bounded, pinnable row cache for exact queries
/// plus an O(L) triangle-inequality bound index for candidate-scan pruning
/// — so peak memory stays far below n². Every point query is an exact hop
/// distance on every tier, so the choice can never change a routing
/// result; [`Architecture::with_oracle`] overrides it for tests and
/// benchmarks.
///
/// # Example
///
/// ```
/// use qubikos_arch::Architecture;
/// use qubikos_graph::generators;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let arch = Architecture::new("ring-5", generators::cycle_graph(5))?;
/// assert_eq!(arch.num_qubits(), 5);
/// assert_eq!(arch.distance(0, 2), 2);
/// assert_eq!(arch.distance(0, 3), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Architecture {
    name: String,
    coupling: Graph,
    oracle: DistanceOracle,
}

impl Architecture {
    /// Builds an architecture from a coupling graph, selecting the distance
    /// oracle automatically from the qubit count.
    ///
    /// # Errors
    ///
    /// Returns [`ArchitectureError::Empty`] for an empty graph and
    /// [`ArchitectureError::Disconnected`] if the graph is not connected.
    pub fn new(name: impl Into<String>, coupling: Graph) -> Result<Self, ArchitectureError> {
        let kind = OracleKind::auto_for(coupling.node_count());
        Self::with_oracle(name, coupling, kind)
    }

    /// Builds an architecture with an explicitly chosen oracle kind,
    /// overriding the automatic size-based selection.
    ///
    /// # Errors
    ///
    /// Same contract as [`Architecture::new`].
    pub fn with_oracle(
        name: impl Into<String>,
        coupling: Graph,
        kind: OracleKind,
    ) -> Result<Self, ArchitectureError> {
        Self::with_oracle_capacity(name, coupling, kind, None)
    }

    /// Builds an architecture with an explicit oracle kind *and* row-cache
    /// capacity (`None` = the default
    /// [`qubikos_graph::SPARSE_ROW_CACHE_CAPACITY`]; ignored by the dense
    /// matrix, which has no cache). Capacity is a performance knob, not
    /// identity: it does not participate in equality or serialization, and
    /// a deserialized architecture gets the default capacity back.
    ///
    /// # Errors
    ///
    /// Same contract as [`Architecture::new`].
    ///
    /// # Panics
    ///
    /// Panics if `row_capacity` is `Some(0)` for a cached oracle kind.
    pub fn with_oracle_capacity(
        name: impl Into<String>,
        coupling: Graph,
        kind: OracleKind,
        row_capacity: Option<usize>,
    ) -> Result<Self, ArchitectureError> {
        if coupling.node_count() == 0 {
            return Err(ArchitectureError::Empty);
        }
        let components = qubikos_graph::connected_components(&coupling).len();
        if components != 1 {
            return Err(ArchitectureError::Disconnected { components });
        }
        let oracle = DistanceOracle::build_with_capacity(&coupling, kind, row_capacity);
        Ok(Architecture {
            name: name.into(),
            coupling,
            oracle,
        })
    }

    /// Device name (e.g. `"aspen-4"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.coupling.node_count()
    }

    /// Number of coupler edges.
    pub fn num_couplers(&self) -> usize {
        self.coupling.edge_count()
    }

    /// The coupling graph.
    pub fn coupling_graph(&self) -> &Graph {
        &self.coupling
    }

    /// The distance oracle behind [`Self::distance`].
    pub fn oracle(&self) -> &DistanceOracle {
        &self.oracle
    }

    /// Which oracle implementation this architecture uses.
    pub fn oracle_kind(&self) -> OracleKind {
        self.oracle.kind()
    }

    /// Oracle usage counters (rows computed, cache hits); see
    /// [`OracleStats`] for the per-implementation semantics.
    pub fn oracle_stats(&self) -> OracleStats {
        self.oracle.stats()
    }

    /// Pins the distance rows for `qubits` in the oracle's row cache — the
    /// routing kernel's front-locality hint (see
    /// [`qubikos_graph::BfsOracle::pin_rows`]). A no-op for the dense
    /// matrix. Pinning is a replacement-policy hint only; it never changes
    /// a distance answer.
    pub fn pin_distance_sources(&self, qubits: &[PhysicalQubit]) {
        self.oracle.pin_rows(qubits);
    }

    /// Exact hop distance between two physical qubits.
    ///
    /// This is the single place the distance contract is defined; every
    /// router and lower bound scores through it (or through
    /// [`Self::distance_row`], which shares it):
    ///
    /// * Distances are exact BFS hop counts, identical for the dense and
    ///   sparse oracles — oracle choice never changes a result.
    /// * Qubits in range: the distance, `usize::MAX` only if the device
    ///   were disconnected (construction rejects that, so in practice never).
    /// * Qubits out of range: **debug builds panic**; release behaviour is
    ///   unspecified (panic or an unrelated value, depending on the oracle).
    ///   Callers that have not already validated their qubits must use
    ///   [`Self::try_distance`].
    pub fn distance(&self, a: PhysicalQubit, b: PhysicalQubit) -> usize {
        self.oracle.distance(a, b)
    }

    /// Checked [`Self::distance`]: `None` when either qubit is out of range.
    pub fn try_distance(&self, a: PhysicalQubit, b: PhysicalQubit) -> Option<usize> {
        self.oracle.try_distance(a, b)
    }

    /// Distances from `a` to every physical qubit, as one row.
    ///
    /// Fetching a row once and indexing it beats repeated
    /// [`Self::distance`] calls whenever one endpoint is fixed across many
    /// queries (candidate scans in placement and routing): on the sparse
    /// oracle it pins the row through one cache access instead of n.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn distance_row(&self, a: PhysicalQubit) -> DistanceRow<'_> {
        self.oracle.distance_row(a)
    }

    /// Returns `true` if `a` and `b` are coupled (a two-qubit gate can run on them).
    pub fn are_coupled(&self, a: PhysicalQubit, b: PhysicalQubit) -> bool {
        self.coupling.has_edge(a, b)
    }

    /// Neighbours of a physical qubit.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn neighbors(&self, q: PhysicalQubit) -> &[PhysicalQubit] {
        self.coupling.neighbors(q)
    }

    /// Degree of a physical qubit.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn degree(&self, q: PhysicalQubit) -> usize {
        self.coupling.degree(q)
    }

    /// Iterator over coupler edges.
    pub fn couplers(&self) -> impl Iterator<Item = Edge> + '_ {
        self.coupling.edges()
    }

    /// Average qubit degree — the paper's proxy for "dense" vs "sparse"
    /// connectivity when explaining why Rochester is harder than Sycamore.
    pub fn average_degree(&self) -> f64 {
        2.0 * self.num_couplers() as f64 / self.num_qubits() as f64
    }

    /// Graph diameter (largest qubit-to-qubit distance).
    pub fn diameter(&self) -> usize {
        self.oracle.diameter().unwrap_or(0)
    }
}

/// Structural identity: name, coupling graph, and oracle *kind*. Oracle
/// cache state and stats are usage artifacts, not identity.
impl PartialEq for Architecture {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.coupling == other.coupling
            && self.oracle.kind() == other.oracle.kind()
    }
}

impl Eq for Architecture {}

/// Serializes as `{name, coupling, oracle}` where `oracle` is the kind; the
/// oracle itself (derived data) is rebuilt on deserialization.
impl Serialize for Architecture {
    fn serialize_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("name".to_string(), self.name.serialize_value()),
            ("coupling".to_string(), self.coupling.serialize_value()),
            ("oracle".to_string(), self.oracle.kind().serialize_value()),
        ])
    }
}

impl Deserialize for Architecture {
    fn deserialize_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let name = String::deserialize_value(value.object_field("name")?)?;
        let coupling = Graph::deserialize_value(value.object_field("coupling")?)?;
        let kind = OracleKind::deserialize_value(value.object_field("oracle")?)?;
        Architecture::with_oracle(name, coupling, kind)
            .map_err(|e| serde::Error::new(format!("invalid architecture: {e}")))
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} qubits, {} couplers, avg degree {:.2})",
            self.name,
            self.num_qubits(),
            self.num_couplers(),
            self.average_degree()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qubikos_graph::{generators, DENSE_ORACLE_MAX_NODES};

    #[test]
    fn builds_from_connected_graph() {
        let arch = Architecture::new("grid", generators::grid_graph(3, 3)).expect("connected");
        assert_eq!(arch.name(), "grid");
        assert_eq!(arch.num_qubits(), 9);
        assert_eq!(arch.num_couplers(), 12);
        assert_eq!(arch.distance(0, 8), 4);
        assert!(arch.are_coupled(0, 1));
        assert!(!arch.are_coupled(0, 8));
        assert_eq!(arch.neighbors(4).len(), 4);
        assert_eq!(arch.degree(0), 2);
        assert_eq!(arch.diameter(), 4);
        assert!((arch.average_degree() - 24.0 / 9.0).abs() < 1e-9);
        assert_eq!(arch.couplers().count(), 12);
    }

    #[test]
    fn small_devices_get_dense_large_get_landmark() {
        let small = Architecture::new("grid", generators::grid_graph(3, 3)).expect("connected");
        assert_eq!(small.oracle_kind(), OracleKind::Dense);
        assert_eq!(small.oracle_stats().rows_computed, 9);
        let big = Architecture::new("big-grid", generators::grid_graph(9, 10)).expect("connected");
        assert!(big.num_qubits() > DENSE_ORACLE_MAX_NODES);
        assert_eq!(big.oracle_kind(), OracleKind::Landmark);
        assert_eq!(big.oracle_stats().rows_computed, 0);
        assert!(big.oracle().landmark().is_some());
    }

    #[test]
    fn capacity_override_and_pin_channel_thread_through() {
        let g = generators::grid_graph(9, 10);
        let arch = Architecture::with_oracle_capacity("g", g, OracleKind::Landmark, Some(7))
            .expect("connected");
        let tier = arch.oracle().row_tier().expect("cached kind");
        assert_eq!(tier.row_cache_capacity(), 7);
        arch.pin_distance_sources(&[0, 1, 2]);
        assert_eq!(tier.pinned_nodes(), 3);
        let _ = arch.distance(0, 89);
        let _ = arch.distance(0, 50);
        assert_eq!(arch.oracle_stats().pinned_hits, 1);
        // Capacity is not identity: same name/coupling/kind compare equal.
        let default_cap =
            Architecture::with_oracle("g", arch.coupling_graph().clone(), OracleKind::Landmark)
                .expect("connected");
        assert_eq!(arch, default_cap);
        // Dense architectures accept (and ignore) the pin hint.
        let dense = Architecture::new("d", generators::grid_graph(3, 3)).expect("connected");
        dense.pin_distance_sources(&[0]);
    }

    #[test]
    fn oracle_override_answers_identically() {
        let g = generators::grid_graph(3, 4);
        let dense = Architecture::with_oracle("g", g.clone(), OracleKind::Dense).expect("ok");
        let sparse = Architecture::with_oracle("g", g, OracleKind::Sparse).expect("ok");
        for a in 0..12 {
            for b in 0..12 {
                assert_eq!(dense.distance(a, b), sparse.distance(a, b));
                assert_eq!(dense.try_distance(a, b), sparse.try_distance(a, b));
            }
            assert_eq!(&dense.distance_row(a)[..], &sparse.distance_row(a)[..]);
        }
        assert_eq!(dense.diameter(), sparse.diameter());
        assert_eq!(dense.try_distance(0, 99), None);
        assert_eq!(sparse.try_distance(99, 0), None);
        // Sparse stats reflect usage; dense reports its eager rows.
        assert!(sparse.oracle_stats().queries > 0);
        assert!(sparse.oracle_stats().cache_hits > 0);
        assert_eq!(dense.oracle_stats().rows_computed, 12);
        // Kind differs, so they are structurally distinct architectures.
        assert_ne!(dense, sparse);
        assert_eq!(dense.oracle().node_count(), 12);
    }

    #[test]
    fn rejects_empty_graph() {
        assert_eq!(
            Architecture::new("none", Graph::new()).unwrap_err(),
            ArchitectureError::Empty
        );
    }

    #[test]
    fn rejects_disconnected_graph() {
        let mut g = generators::path_graph(3);
        g.add_node();
        match Architecture::new("broken", g).unwrap_err() {
            ArchitectureError::Disconnected { components } => assert_eq!(components, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn error_display_is_informative() {
        let text = ArchitectureError::Disconnected { components: 3 }.to_string();
        assert!(text.contains("3 components"));
        assert!(!ArchitectureError::Empty.to_string().is_empty());
    }

    #[test]
    fn display_mentions_name_and_size() {
        let arch = Architecture::new("line", generators::path_graph(4)).expect("connected");
        let text = arch.to_string();
        assert!(text.contains("line"));
        assert!(text.contains("4 qubits"));
    }

    #[test]
    fn single_qubit_architecture_is_valid() {
        let arch = Architecture::new("one", Graph::with_nodes(1)).expect("single qubit ok");
        assert_eq!(arch.num_qubits(), 1);
        assert_eq!(arch.diameter(), 0);
    }

    #[test]
    fn serde_round_trips_all_oracle_kinds() {
        for kind in [OracleKind::Dense, OracleKind::Sparse, OracleKind::Landmark] {
            let arch =
                Architecture::with_oracle("rt", generators::grid_graph(3, 3), kind).expect("ok");
            let json = serde_json::to_string(&arch).expect("serialize");
            let back: Architecture = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(back, arch);
            assert_eq!(back.oracle_kind(), kind);
            assert_eq!(back.distance(0, 8), 4);
        }
    }

    #[test]
    fn deserialize_rejects_invalid_coupling() {
        let err = serde_json::from_str::<Architecture>(
            r#"{"name":"bad","coupling":{"adjacency":[]},"oracle":"Dense"}"#,
        );
        assert!(err.is_err());
    }
}
