//! The [`Architecture`] type.

use qubikos_graph::{DistanceMatrix, Edge, Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Index of a physical qubit on a device.
pub type PhysicalQubit = NodeId;

/// Error building an [`Architecture`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchitectureError {
    /// The coupling graph had no qubits.
    Empty,
    /// The coupling graph was not connected; routing between the listed
    /// components would be impossible.
    Disconnected {
        /// Number of connected components found.
        components: usize,
    },
}

impl fmt::Display for ArchitectureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchitectureError::Empty => write!(f, "coupling graph has no qubits"),
            ArchitectureError::Disconnected { components } => write!(
                f,
                "coupling graph is disconnected ({components} components); routing is impossible"
            ),
        }
    }
}

impl Error for ArchitectureError {}

/// A named device: a connected coupling graph plus its distance matrix.
///
/// # Example
///
/// ```
/// use qubikos_arch::Architecture;
/// use qubikos_graph::generators;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let arch = Architecture::new("ring-5", generators::cycle_graph(5))?;
/// assert_eq!(arch.num_qubits(), 5);
/// assert_eq!(arch.distance(0, 2), 2);
/// assert_eq!(arch.distance(0, 3), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Architecture {
    name: String,
    coupling: Graph,
    distances: DistanceMatrix,
}

impl Architecture {
    /// Builds an architecture from a coupling graph.
    ///
    /// # Errors
    ///
    /// Returns [`ArchitectureError::Empty`] for an empty graph and
    /// [`ArchitectureError::Disconnected`] if the graph is not connected.
    pub fn new(name: impl Into<String>, coupling: Graph) -> Result<Self, ArchitectureError> {
        if coupling.node_count() == 0 {
            return Err(ArchitectureError::Empty);
        }
        let components = qubikos_graph::connected_components(&coupling).len();
        if components != 1 {
            return Err(ArchitectureError::Disconnected { components });
        }
        let distances = DistanceMatrix::new(&coupling);
        Ok(Architecture {
            name: name.into(),
            coupling,
            distances,
        })
    }

    /// Device name (e.g. `"aspen-4"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.coupling.node_count()
    }

    /// Number of coupler edges.
    pub fn num_couplers(&self) -> usize {
        self.coupling.edge_count()
    }

    /// The coupling graph.
    pub fn coupling_graph(&self) -> &Graph {
        &self.coupling
    }

    /// The precomputed all-pairs distance matrix.
    pub fn distances(&self) -> &DistanceMatrix {
        &self.distances
    }

    /// Hop distance between two physical qubits.
    ///
    /// # Panics
    ///
    /// Panics if either qubit is out of range.
    pub fn distance(&self, a: PhysicalQubit, b: PhysicalQubit) -> usize {
        self.distances.get(a, b)
    }

    /// Returns `true` if `a` and `b` are coupled (a two-qubit gate can run on them).
    pub fn are_coupled(&self, a: PhysicalQubit, b: PhysicalQubit) -> bool {
        self.coupling.has_edge(a, b)
    }

    /// Neighbours of a physical qubit.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn neighbors(&self, q: PhysicalQubit) -> &[PhysicalQubit] {
        self.coupling.neighbors(q)
    }

    /// Degree of a physical qubit.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn degree(&self, q: PhysicalQubit) -> usize {
        self.coupling.degree(q)
    }

    /// Iterator over coupler edges.
    pub fn couplers(&self) -> impl Iterator<Item = Edge> + '_ {
        self.coupling.edges()
    }

    /// Average qubit degree — the paper's proxy for "dense" vs "sparse"
    /// connectivity when explaining why Rochester is harder than Sycamore.
    pub fn average_degree(&self) -> f64 {
        2.0 * self.num_couplers() as f64 / self.num_qubits() as f64
    }

    /// Graph diameter (largest qubit-to-qubit distance).
    pub fn diameter(&self) -> usize {
        self.distances.diameter().unwrap_or(0)
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} qubits, {} couplers, avg degree {:.2})",
            self.name,
            self.num_qubits(),
            self.num_couplers(),
            self.average_degree()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qubikos_graph::generators;

    #[test]
    fn builds_from_connected_graph() {
        let arch = Architecture::new("grid", generators::grid_graph(3, 3)).expect("connected");
        assert_eq!(arch.name(), "grid");
        assert_eq!(arch.num_qubits(), 9);
        assert_eq!(arch.num_couplers(), 12);
        assert_eq!(arch.distance(0, 8), 4);
        assert!(arch.are_coupled(0, 1));
        assert!(!arch.are_coupled(0, 8));
        assert_eq!(arch.neighbors(4).len(), 4);
        assert_eq!(arch.degree(0), 2);
        assert_eq!(arch.diameter(), 4);
        assert!((arch.average_degree() - 24.0 / 9.0).abs() < 1e-9);
        assert_eq!(arch.couplers().count(), 12);
    }

    #[test]
    fn rejects_empty_graph() {
        assert_eq!(
            Architecture::new("none", Graph::new()).unwrap_err(),
            ArchitectureError::Empty
        );
    }

    #[test]
    fn rejects_disconnected_graph() {
        let mut g = generators::path_graph(3);
        g.add_node();
        match Architecture::new("broken", g).unwrap_err() {
            ArchitectureError::Disconnected { components } => assert_eq!(components, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn error_display_is_informative() {
        let text = ArchitectureError::Disconnected { components: 3 }.to_string();
        assert!(text.contains("3 components"));
        assert!(!ArchitectureError::Empty.to_string().is_empty());
    }

    #[test]
    fn display_mentions_name_and_size() {
        let arch = Architecture::new("line", generators::path_graph(4)).expect("connected");
        let text = arch.to_string();
        assert!(text.contains("line"));
        assert!(text.contains("4 qubits"));
    }

    #[test]
    fn single_qubit_architecture_is_valid() {
        let arch = Architecture::new("one", Graph::with_nodes(1)).expect("single qubit ok");
        assert_eq!(arch.num_qubits(), 1);
        assert_eq!(arch.diameter(), 0);
    }
}
