//! The QASM boundary is what the paper's methodology hands to external
//! tools, so it gets its own integration suite: property-based round trips
//! over randomly generated circuits, plus fixture files exercising the
//! dialect variations real exporters produce (tab-separated operands,
//! registers not named `q`, trailing measurements).

use proptest::prelude::*;
use qubikos_circuit::{parse_qasm, to_qasm, Circuit, Gate, OneQubitKind};

/// Strategy: a random circuit over `num_qubits` qubits mixing every gate
/// kind the QASM subset supports.
fn arb_circuit(num_qubits: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    let gate = (0..num_qubits, 0..num_qubits, 0..9usize).prop_filter_map(
        "distinct qubits for two-qubit gates",
        move |(a, b, kind)| match kind {
            0 => Some(Gate::h(a)),
            1 => Some(Gate::x(a)),
            2 => Some(Gate::one(OneQubitKind::Y, a)),
            3 => Some(Gate::z(a)),
            4 => Some(Gate::one(OneQubitKind::S, a)),
            5 => Some(Gate::t(a)),
            6 if a != b => Some(Gate::cx(a, b)),
            7 if a != b => Some(Gate::cz(a, b)),
            8 if a != b => Some(Gate::swap(a, b)),
            _ => None,
        },
    );
    proptest::collection::vec(gate, 1..max_gates)
        .prop_map(move |gates| Circuit::from_gates(num_qubits, gates))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every circuit survives `to_qasm` → `parse_qasm` unchanged.
    #[test]
    fn round_trip_is_identity(circuit in arb_circuit(9, 60)) {
        let text = to_qasm(&circuit);
        let parsed = parse_qasm(&text).expect("exported QASM always parses");
        prop_assert_eq!(parsed, circuit);
    }

    /// The round trip still holds after the whitespace mangling other tools
    /// apply: single spaces become tabs or runs of spaces.
    #[test]
    fn round_trip_survives_whitespace_mangling(
        circuit in arb_circuit(6, 40),
        separator in 0..2usize,
    ) {
        let text = to_qasm(&circuit);
        let mangled = if separator == 0 {
            text.replace(' ', "\t")
        } else {
            text.replace(' ', "   ")
        };
        let parsed = parse_qasm(&mangled).expect("mangled QASM parses");
        prop_assert_eq!(parsed, circuit);
    }

    /// Renaming the register (the dialect difference that used to be
    /// rejected) never changes the parsed circuit.
    #[test]
    fn round_trip_survives_register_renaming(circuit in arb_circuit(5, 30)) {
        let text = to_qasm(&circuit).replace("qreg q[", "qreg rr[").replace(" q[", " rr[");
        let parsed = parse_qasm(&text).expect("renamed register parses");
        prop_assert_eq!(parsed, circuit);
    }
}

#[test]
fn fixture_with_tabs_parses() {
    let parsed = parse_qasm(include_str!("fixtures/tabs.qasm")).expect("tabs fixture parses");
    assert_eq!(
        parsed,
        Circuit::from_gates(
            4,
            [
                Gate::h(0),
                Gate::cx(0, 1),
                Gate::cz(1, 2),
                Gate::swap(2, 3),
                Gate::t(3),
            ],
        )
    );
}

#[test]
fn fixture_with_named_register_parses() {
    let parsed = parse_qasm(include_str!("fixtures/named_register.qasm"))
        .expect("named-register fixture parses");
    assert_eq!(
        parsed,
        Circuit::from_gates(
            16,
            [
                Gate::h(0),
                Gate::cx(0, 5),
                Gate::cx(5, 10),
                Gate::swap(10, 15),
            ],
        )
    );
}

#[test]
fn fixture_with_trailing_measurements_parses() {
    let parsed =
        parse_qasm(include_str!("fixtures/measurements.qasm")).expect("measurement fixture parses");
    assert_eq!(
        parsed,
        Circuit::from_gates(3, [Gate::h(0), Gate::cx(0, 1), Gate::cx(1, 2)])
    );
}
