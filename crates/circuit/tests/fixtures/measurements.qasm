OPENQASM 2.0;
include "qelib1.inc";
// trailing measurements and a classical register, as Qiskit appends
qreg q[3];
creg c[3];
h q[0];
cx q[0], q[1];
cx q[1], q[2];
barrier q[0], q[1], q[2];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
