OPENQASM 2.0;
include "qelib1.inc";
// a register that is not named q, with aligned columns
qreg work_reg[16];
h    work_reg[0];
cx   work_reg[0],  work_reg[5];
cx   work_reg[5],  work_reg[10];
swap work_reg[10], work_reg[15];
