OPENQASM 2.0;
include "qelib1.inc";
// tab-separated operands, as emitted by some exporters
qreg q[4];
h	q[0];
cx	q[0],	q[1];
cz	q[1],q[2];
swap	q[2],	q[3];
t	q[3];
