//! Gate dependency DAG over two-qubit gates.
//!
//! This is the paper's `D(G2, EG)`: nodes are the two-qubit gates of a
//! circuit (single-qubit gates impose no connectivity constraint and are
//! re-inserted after layout synthesis), and there is an edge `g -> g'` when
//! `g'` is the next two-qubit gate after `g` on one of its qubits. A path
//! from `g` to `g'` therefore means `g` must execute before `g'`.

use crate::circuit::Circuit;
use crate::gate::{Gate, QubitId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, VecDeque};

/// Index of a node in a [`DependencyDag`] (the position of the gate within
/// the circuit's two-qubit-gate subsequence).
pub type DagNodeId = usize;

/// Dependency DAG of the two-qubit gates of a circuit.
///
/// # Example
///
/// ```
/// use qubikos_circuit::{Circuit, DependencyDag, Gate};
///
/// let c = Circuit::from_gates(3, [Gate::cx(0, 1), Gate::cx(1, 2), Gate::cx(0, 2)]);
/// let dag = DependencyDag::from_circuit(&c);
/// assert_eq!(dag.len(), 3);
/// assert_eq!(dag.front_layer(), vec![0]);
/// assert!(dag.has_path(0, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DependencyDag {
    gates: Vec<Gate>,
    /// For each node, the circuit index of the gate it represents.
    circuit_indices: Vec<usize>,
    /// For each node, its gate's qubit pair (precomputed so routing inner
    /// loops avoid the per-access `Option` unwrap of [`Gate::qubit_pair`]).
    qubit_pairs: Vec<(QubitId, QubitId)>,
    successors: Vec<Vec<DagNodeId>>,
    predecessors: Vec<Vec<DagNodeId>>,
}

impl DependencyDag {
    /// Builds the dependency DAG of `circuit`'s two-qubit gates.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let mut gates = Vec::new();
        let mut circuit_indices = Vec::new();
        let mut qubit_pairs = Vec::new();
        let mut successors: Vec<Vec<DagNodeId>> = Vec::new();
        let mut predecessors: Vec<Vec<DagNodeId>> = Vec::new();
        let mut last_on_qubit: Vec<Option<DagNodeId>> = vec![None; circuit.num_qubits()];

        for (ci, gate) in circuit.iter() {
            if !gate.is_two_qubit() {
                continue;
            }
            let node = gates.len();
            gates.push(*gate);
            circuit_indices.push(ci);
            let (a, b) = gate.qubit_pair().expect("two-qubit gate");
            qubit_pairs.push((a, b));
            successors.push(Vec::new());
            predecessors.push(Vec::new());
            for q in [a, b] {
                if let Some(prev) = last_on_qubit[q] {
                    if !successors[prev].contains(&node) {
                        successors[prev].push(node);
                        predecessors[node].push(prev);
                    }
                }
                last_on_qubit[q] = Some(node);
            }
        }

        DependencyDag {
            gates,
            circuit_indices,
            qubit_pairs,
            successors,
            predecessors,
        }
    }

    /// Number of two-qubit gates (DAG nodes).
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` if the circuit had no two-qubit gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gate represented by node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn gate(&self, i: DagNodeId) -> Gate {
        self.gates[i]
    }

    /// All gates in node order (which is program order).
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The qubit pair of node `i`'s gate, without the `Option` round-trip of
    /// [`Gate::qubit_pair`] (every DAG node is a two-qubit gate by
    /// construction). Routing inner loops call this per decision, so it is
    /// precomputed at construction.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn qubit_pair(&self, i: DagNodeId) -> (QubitId, QubitId) {
        self.qubit_pairs[i]
    }

    /// The index of node `i`'s gate in the original circuit.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn circuit_index(&self, i: DagNodeId) -> usize {
        self.circuit_indices[i]
    }

    /// Direct successors of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn successors(&self, i: DagNodeId) -> &[DagNodeId] {
        &self.successors[i]
    }

    /// Direct predecessors of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn predecessors(&self, i: DagNodeId) -> &[DagNodeId] {
        &self.predecessors[i]
    }

    /// Nodes with no predecessors — the initial execution front.
    pub fn front_layer(&self) -> Vec<DagNodeId> {
        (0..self.len())
            .filter(|&i| self.predecessors[i].is_empty())
            .collect()
    }

    /// All ancestors of `i` (the paper's `Prev(g)`), excluding `i` itself.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn prev_set(&self, i: DagNodeId) -> BTreeSet<DagNodeId> {
        assert!(i < self.len(), "node {i} out of range");
        let mut seen = BTreeSet::new();
        let mut queue: VecDeque<DagNodeId> = self.predecessors[i].iter().copied().collect();
        while let Some(n) = queue.pop_front() {
            if seen.insert(n) {
                queue.extend(self.predecessors[n].iter().copied());
            }
        }
        seen
    }

    /// Returns `true` if there is a directed path from `a` to `b`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn has_path(&self, a: DagNodeId, b: DagNodeId) -> bool {
        assert!(a < self.len() && b < self.len(), "node out of range");
        if a == b {
            return true;
        }
        // Node order is program order, so paths only go forward.
        if a > b {
            return false;
        }
        let mut seen = vec![false; self.len()];
        let mut queue = VecDeque::from([a]);
        seen[a] = true;
        while let Some(n) = queue.pop_front() {
            for &s in &self.successors[n] {
                if s == b {
                    return true;
                }
                if s <= b && !seen[s] {
                    seen[s] = true;
                    queue.push_back(s);
                }
            }
        }
        false
    }

    /// A topological order of the nodes (Kahn's algorithm). Because nodes are
    /// created in program order this is always `0..len()`, but the method
    /// exists so consumers do not rely on that detail.
    pub fn topological_order(&self) -> Vec<DagNodeId> {
        let mut indegree: Vec<usize> = self.predecessors.iter().map(Vec::len).collect();
        let mut queue: VecDeque<DagNodeId> =
            (0..self.len()).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(self.len());
        while let Some(n) = queue.pop_front() {
            order.push(n);
            for &s in &self.successors[n] {
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    queue.push_back(s);
                }
            }
        }
        debug_assert_eq!(order.len(), self.len(), "dependency graph must be acyclic");
        order
    }

    /// ASAP layering: `layers()[k]` is the set of nodes whose longest path
    /// from a front-layer node has length `k`. Gates in the same layer can
    /// execute in parallel.
    pub fn layers(&self) -> Vec<Vec<DagNodeId>> {
        let mut level = vec![0usize; self.len()];
        for &n in &self.topological_order() {
            for &p in &self.predecessors[n] {
                level[n] = level[n].max(level[p] + 1);
            }
        }
        let max_level = level.iter().copied().max().map_or(0, |m| m + 1);
        let mut layers = vec![Vec::new(); max_level];
        for (n, &l) in level.iter().enumerate() {
            layers[l].push(n);
        }
        layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Circuit {
        // g0(0,1) -> g1(1,2) -> g2(2,3); g0 and g2 are independent of each other? No:
        // g1 depends on g0 (share qubit 1); g2 depends on g1 (share qubit 2).
        Circuit::from_gates(4, [Gate::cx(0, 1), Gate::cx(1, 2), Gate::cx(2, 3)])
    }

    #[test]
    fn builds_expected_edges() {
        let dag = DependencyDag::from_circuit(&chain());
        assert_eq!(dag.len(), 3);
        assert_eq!(dag.successors(0), &[1]);
        assert_eq!(dag.successors(1), &[2]);
        assert_eq!(dag.predecessors(2), &[1]);
        assert_eq!(dag.front_layer(), vec![0]);
    }

    #[test]
    fn single_qubit_gates_are_excluded() {
        let c = Circuit::from_gates(3, [Gate::h(0), Gate::cx(0, 1), Gate::h(1), Gate::cx(1, 2)]);
        let dag = DependencyDag::from_circuit(&c);
        assert_eq!(dag.len(), 2);
        assert_eq!(dag.circuit_index(0), 1);
        assert_eq!(dag.circuit_index(1), 3);
    }

    #[test]
    fn parallel_gates_have_no_edge() {
        let c = Circuit::from_gates(4, [Gate::cx(0, 1), Gate::cx(2, 3)]);
        let dag = DependencyDag::from_circuit(&c);
        assert_eq!(dag.front_layer(), vec![0, 1]);
        assert!(dag.successors(0).is_empty());
        assert!(!dag.has_path(0, 1));
        assert!(dag.has_path(0, 0));
    }

    #[test]
    fn no_duplicate_edge_for_shared_pair() {
        // Two consecutive gates on the same qubit pair should produce one edge.
        let c = Circuit::from_gates(2, [Gate::cx(0, 1), Gate::cz(0, 1)]);
        let dag = DependencyDag::from_circuit(&c);
        assert_eq!(dag.successors(0), &[1]);
        assert_eq!(dag.predecessors(1), &[0]);
    }

    #[test]
    fn prev_set_collects_all_ancestors() {
        let c = Circuit::from_gates(
            4,
            [
                Gate::cx(0, 1),
                Gate::cx(2, 3),
                Gate::cx(1, 2),
                Gate::cx(0, 3),
            ],
        );
        let dag = DependencyDag::from_circuit(&c);
        let prev = dag.prev_set(3);
        // Gate 3 acts on 0 and 3: ancestors are gate 0 (qubit 0), gate 1 (qubit 3),
        // and gate 2 is an ancestor through... gate 2 acts on 1,2 — not on 0 or 3,
        // and gate 3's predecessors are gates 0 and 1 only.
        assert!(prev.contains(&0));
        assert!(prev.contains(&1));
        assert!(!prev.contains(&2));
    }

    #[test]
    fn has_path_transitive() {
        let dag = DependencyDag::from_circuit(&chain());
        assert!(dag.has_path(0, 2));
        assert!(!dag.has_path(2, 0));
    }

    #[test]
    fn topological_order_is_program_order() {
        let dag = DependencyDag::from_circuit(&chain());
        assert_eq!(dag.topological_order(), vec![0, 1, 2]);
    }

    #[test]
    fn layers_group_parallel_gates() {
        let c = Circuit::from_gates(
            4,
            [
                Gate::cx(0, 1),
                Gate::cx(2, 3),
                Gate::cx(1, 2),
                Gate::cx(0, 3),
            ],
        );
        let dag = DependencyDag::from_circuit(&c);
        let layers = dag.layers();
        // Gate 2 (1,2) and gate 3 (0,3) both depend only on the first layer,
        // so they land in the same second layer.
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0], vec![0, 1]);
        assert_eq!(layers[1], vec![2, 3]);
    }

    #[test]
    fn qubit_pair_matches_gate() {
        let dag = DependencyDag::from_circuit(&chain());
        for i in 0..dag.len() {
            assert_eq!(Some(dag.qubit_pair(i)), dag.gate(i).qubit_pair());
        }
    }

    #[test]
    fn empty_circuit_dag() {
        let dag = DependencyDag::from_circuit(&Circuit::new(3));
        assert!(dag.is_empty());
        assert!(dag.front_layer().is_empty());
        assert!(dag.layers().is_empty());
        assert!(dag.topological_order().is_empty());
    }
}
