//! Interaction graphs.
//!
//! The *interaction graph* `GI(Q, EQ)` of a circuit has one node per program
//! qubit and an edge between two qubits whenever they share a two-qubit gate.
//! A circuit can be executed without SWAP insertion exactly when its
//! interaction graph embeds into the coupling graph, which is why the
//! QUBIKOS generator works so hard to make its sections' interaction graphs
//! *not* embed.

use crate::circuit::Circuit;
use crate::gate::Gate;
use qubikos_graph::Graph;

/// Interaction graph of a whole circuit.
///
/// # Example
///
/// ```
/// use qubikos_circuit::{Circuit, Gate, interaction::interaction_graph};
///
/// let c = Circuit::from_gates(4, [Gate::cx(0, 1), Gate::cx(1, 2), Gate::h(3)]);
/// let ig = interaction_graph(&c);
/// assert_eq!(ig.node_count(), 4);
/// assert_eq!(ig.edge_count(), 2);
/// ```
pub fn interaction_graph(circuit: &Circuit) -> Graph {
    interaction_graph_of_gates(circuit.num_qubits(), circuit.gates())
}

/// Interaction graph of an arbitrary slice of gates over `num_qubits` qubits.
///
/// Useful for building the interaction graph of a single backbone *section*
/// rather than the whole circuit.
///
/// # Panics
///
/// Panics if any gate touches a qubit `>= num_qubits`.
pub fn interaction_graph_of_gates(num_qubits: usize, gates: &[Gate]) -> Graph {
    let mut g = Graph::with_nodes(num_qubits);
    for gate in gates {
        if let Some((a, b)) = gate.qubit_pair() {
            assert!(
                a < num_qubits && b < num_qubits,
                "gate {gate} out of range for {num_qubits} qubits"
            );
            g.add_edge(a, b);
        }
    }
    g
}

impl Circuit {
    /// Interaction graph of this circuit (see [`interaction_graph`]).
    pub fn interaction_graph(&self) -> Graph {
        interaction_graph(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_pairs_collapse_to_one_edge() {
        let c = Circuit::from_gates(3, [Gate::cx(0, 1), Gate::cz(1, 0), Gate::cx(0, 1)]);
        let ig = interaction_graph(&c);
        assert_eq!(ig.edge_count(), 1);
        assert!(ig.has_edge(0, 1));
    }

    #[test]
    fn single_qubit_gates_do_not_create_edges() {
        let c = Circuit::from_gates(2, [Gate::h(0), Gate::x(1)]);
        assert_eq!(interaction_graph(&c).edge_count(), 0);
    }

    #[test]
    fn method_and_free_function_agree() {
        let c = Circuit::from_gates(4, [Gate::cx(0, 3), Gate::cx(1, 2)]);
        assert_eq!(c.interaction_graph(), interaction_graph(&c));
    }

    #[test]
    fn graph_of_gate_slice() {
        let gates = [Gate::cx(0, 1), Gate::cx(2, 3)];
        let ig = interaction_graph_of_gates(5, &gates);
        assert_eq!(ig.node_count(), 5);
        assert_eq!(ig.edge_count(), 2);
        assert_eq!(ig.degree(4), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_graph_rejects_out_of_range() {
        let gates = [Gate::cx(0, 9)];
        let _ = interaction_graph_of_gates(2, &gates);
    }
}
