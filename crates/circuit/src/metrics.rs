//! Summary statistics for circuits.

use crate::circuit::Circuit;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A snapshot of the size and schedule of a circuit.
///
/// The SWAP-related fields are what the QUBIKOS evaluation reports: a layout
/// synthesis result is scored by how many SWAP gates it added relative to the
/// known optimum.
///
/// # Example
///
/// ```
/// use qubikos_circuit::{Circuit, CircuitStats, Gate};
///
/// let c = Circuit::from_gates(3, [Gate::cx(0, 1), Gate::swap(1, 2), Gate::cx(0, 2)]);
/// let stats = CircuitStats::of(&c);
/// assert_eq!(stats.two_qubit_gates, 3);
/// assert_eq!(stats.swap_gates, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CircuitStats {
    /// Number of program qubits.
    pub num_qubits: usize,
    /// Total gate count.
    pub total_gates: usize,
    /// Single-qubit gate count.
    pub one_qubit_gates: usize,
    /// Two-qubit gate count (including SWAPs).
    pub two_qubit_gates: usize,
    /// SWAP gate count.
    pub swap_gates: usize,
    /// Depth with every gate counted.
    pub depth: usize,
    /// Depth counting only two-qubit gates.
    pub two_qubit_depth: usize,
}

impl CircuitStats {
    /// Computes statistics for `circuit`.
    pub fn of(circuit: &Circuit) -> Self {
        let two = circuit.two_qubit_gate_count();
        CircuitStats {
            num_qubits: circuit.num_qubits(),
            total_gates: circuit.gate_count(),
            one_qubit_gates: circuit.gate_count() - two,
            two_qubit_gates: two,
            swap_gates: circuit.swap_count(),
            depth: circuit.depth(),
            two_qubit_depth: circuit.two_qubit_depth(),
        }
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "qubits={} gates={} (1q={}, 2q={}, swap={}) depth={} 2q-depth={}",
            self.num_qubits,
            self.total_gates,
            self.one_qubit_gates,
            self.two_qubit_gates,
            self.swap_gates,
            self.depth,
            self.two_qubit_depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    #[test]
    fn stats_of_mixed_circuit() {
        let c = Circuit::from_gates(
            3,
            [Gate::h(0), Gate::cx(0, 1), Gate::swap(1, 2), Gate::t(2)],
        );
        let s = CircuitStats::of(&c);
        assert_eq!(s.num_qubits, 3);
        assert_eq!(s.total_gates, 4);
        assert_eq!(s.one_qubit_gates, 2);
        assert_eq!(s.two_qubit_gates, 2);
        assert_eq!(s.swap_gates, 1);
        assert_eq!(s.two_qubit_depth, 2);
        assert!(s.depth >= s.two_qubit_depth);
    }

    #[test]
    fn stats_of_empty_circuit() {
        let s = CircuitStats::of(&Circuit::new(4));
        assert_eq!(s.total_gates, 0);
        assert_eq!(s.depth, 0);
    }

    #[test]
    fn display_mentions_all_fields() {
        let c = Circuit::from_gates(2, [Gate::cx(0, 1)]);
        let text = CircuitStats::of(&c).to_string();
        assert!(text.contains("qubits=2"));
        assert!(text.contains("swap=0"));
    }
}
