//! Gate types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a program qubit within a [`Circuit`](crate::Circuit).
pub type QubitId = usize;

/// Single-qubit gate kinds supported by the IR.
///
/// Layout synthesis never constrains single-qubit gates (they execute on any
/// physical qubit), so the set only needs to be rich enough to express the
/// circuits the benchmarks and examples use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OneQubitKind {
    /// Hadamard.
    H,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Phase gate S.
    S,
    /// T gate.
    T,
}

impl OneQubitKind {
    /// Lower-case OpenQASM mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            OneQubitKind::H => "h",
            OneQubitKind::X => "x",
            OneQubitKind::Y => "y",
            OneQubitKind::Z => "z",
            OneQubitKind::S => "s",
            OneQubitKind::T => "t",
        }
    }

    /// All supported kinds, used by tests and the QASM parser.
    pub const ALL: [OneQubitKind; 6] = [
        OneQubitKind::H,
        OneQubitKind::X,
        OneQubitKind::Y,
        OneQubitKind::Z,
        OneQubitKind::S,
        OneQubitKind::T,
    ];
}

/// Two-qubit gate kinds supported by the IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TwoQubitKind {
    /// Controlled-NOT (control, target).
    Cx,
    /// Controlled-Z (symmetric).
    Cz,
    /// SWAP gate — inserted by layout synthesis, symmetric.
    Swap,
}

impl TwoQubitKind {
    /// Lower-case OpenQASM mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            TwoQubitKind::Cx => "cx",
            TwoQubitKind::Cz => "cz",
            TwoQubitKind::Swap => "swap",
        }
    }
}

/// A gate applied to one or two program qubits.
///
/// Constructors are provided for every supported kind; the two-qubit
/// constructors panic on equal qubits because a two-qubit gate acting twice
/// on the same wire is meaningless and would corrupt the interaction graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Gate {
    /// Single-qubit gate.
    One {
        /// Which single-qubit gate.
        kind: OneQubitKind,
        /// The qubit it acts on.
        qubit: QubitId,
    },
    /// Two-qubit gate.
    Two {
        /// Which two-qubit gate.
        kind: TwoQubitKind,
        /// The qubits it acts on; order is significant for `Cx`.
        qubits: [QubitId; 2],
    },
}

impl Gate {
    /// Hadamard on `q`.
    pub fn h(q: QubitId) -> Self {
        Gate::One {
            kind: OneQubitKind::H,
            qubit: q,
        }
    }

    /// Pauli-X on `q`.
    pub fn x(q: QubitId) -> Self {
        Gate::One {
            kind: OneQubitKind::X,
            qubit: q,
        }
    }

    /// Pauli-Z on `q`.
    pub fn z(q: QubitId) -> Self {
        Gate::One {
            kind: OneQubitKind::Z,
            qubit: q,
        }
    }

    /// T gate on `q`.
    pub fn t(q: QubitId) -> Self {
        Gate::One {
            kind: OneQubitKind::T,
            qubit: q,
        }
    }

    /// Single-qubit gate of arbitrary kind.
    pub fn one(kind: OneQubitKind, q: QubitId) -> Self {
        Gate::One { kind, qubit: q }
    }

    /// CNOT with control `c` and target `t`.
    ///
    /// # Panics
    ///
    /// Panics if `c == t`.
    pub fn cx(c: QubitId, t: QubitId) -> Self {
        Self::two(TwoQubitKind::Cx, c, t)
    }

    /// Controlled-Z between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn cz(a: QubitId, b: QubitId) -> Self {
        Self::two(TwoQubitKind::Cz, a, b)
    }

    /// SWAP between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn swap(a: QubitId, b: QubitId) -> Self {
        Self::two(TwoQubitKind::Swap, a, b)
    }

    /// Two-qubit gate of arbitrary kind.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn two(kind: TwoQubitKind, a: QubitId, b: QubitId) -> Self {
        assert!(
            a != b,
            "two-qubit gate needs distinct qubits, got {a} twice"
        );
        Gate::Two {
            kind,
            qubits: [a, b],
        }
    }

    /// Returns `true` for two-qubit gates.
    pub fn is_two_qubit(&self) -> bool {
        matches!(self, Gate::Two { .. })
    }

    /// Returns `true` for SWAP gates.
    pub fn is_swap(&self) -> bool {
        matches!(
            self,
            Gate::Two {
                kind: TwoQubitKind::Swap,
                ..
            }
        )
    }

    /// The qubits this gate acts on (one or two entries).
    pub fn qubits(&self) -> Vec<QubitId> {
        match self {
            Gate::One { qubit, .. } => vec![*qubit],
            Gate::Two { qubits, .. } => qubits.to_vec(),
        }
    }

    /// For a two-qubit gate, its qubit pair `(g[0], g[1])`.
    pub fn qubit_pair(&self) -> Option<(QubitId, QubitId)> {
        match self {
            Gate::Two { qubits, .. } => Some((qubits[0], qubits[1])),
            Gate::One { .. } => None,
        }
    }

    /// Returns `true` if the gate acts on qubit `q`.
    pub fn acts_on(&self, q: QubitId) -> bool {
        match self {
            Gate::One { qubit, .. } => *qubit == q,
            Gate::Two { qubits, .. } => qubits[0] == q || qubits[1] == q,
        }
    }

    /// Largest qubit index used by the gate.
    pub fn max_qubit(&self) -> QubitId {
        match self {
            Gate::One { qubit, .. } => *qubit,
            Gate::Two { qubits, .. } => qubits[0].max(qubits[1]),
        }
    }

    /// The same gate with its qubit indices rewritten through `f`.
    ///
    /// Used when applying an initial mapping or composing with SWAP
    /// permutations.
    pub fn map_qubits(&self, mut f: impl FnMut(QubitId) -> QubitId) -> Gate {
        match *self {
            Gate::One { kind, qubit } => Gate::One {
                kind,
                qubit: f(qubit),
            },
            Gate::Two { kind, qubits } => Gate::Two {
                kind,
                qubits: [f(qubits[0]), f(qubits[1])],
            },
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::One { kind, qubit } => write!(f, "{} q[{}]", kind.mnemonic(), qubit),
            Gate::Two { kind, qubits } => {
                write!(f, "{} q[{}], q[{}]", kind.mnemonic(), qubits[0], qubits[1])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_queries() {
        let g = Gate::cx(0, 3);
        assert!(g.is_two_qubit());
        assert!(!g.is_swap());
        assert_eq!(g.qubits(), vec![0, 3]);
        assert_eq!(g.qubit_pair(), Some((0, 3)));
        assert_eq!(g.max_qubit(), 3);
        assert!(g.acts_on(0));
        assert!(g.acts_on(3));
        assert!(!g.acts_on(1));

        let h = Gate::h(2);
        assert!(!h.is_two_qubit());
        assert_eq!(h.qubits(), vec![2]);
        assert_eq!(h.qubit_pair(), None);
        assert_eq!(h.max_qubit(), 2);
    }

    #[test]
    fn swap_is_swap() {
        assert!(Gate::swap(1, 2).is_swap());
        assert!(!Gate::cz(1, 2).is_swap());
    }

    #[test]
    #[should_panic(expected = "distinct qubits")]
    fn two_qubit_gate_rejects_equal_qubits() {
        let _ = Gate::cx(1, 1);
    }

    #[test]
    fn map_qubits_rewrites_indices() {
        let g = Gate::cx(0, 1).map_qubits(|q| q + 10);
        assert_eq!(g.qubit_pair(), Some((10, 11)));
        let h = Gate::h(3).map_qubits(|q| q * 2);
        assert_eq!(h.qubits(), vec![6]);
    }

    #[test]
    fn display_mnemonics() {
        assert_eq!(Gate::h(0).to_string(), "h q[0]");
        assert_eq!(Gate::cx(0, 1).to_string(), "cx q[0], q[1]");
        assert_eq!(Gate::swap(2, 3).to_string(), "swap q[2], q[3]");
        for k in OneQubitKind::ALL {
            assert!(!k.mnemonic().is_empty());
        }
    }
}
