//! OpenQASM 2.0 subset import/export.
//!
//! The exported dialect is the small subset every QLS toolchain understands:
//! a single quantum register `q`, the one-qubit gates `h x y z s t` and the
//! two-qubit gates `cx cz swap`. This is enough to hand QUBIKOS circuits to
//! external compilers (Qiskit, t|ket⟩, QMAP) and to read their input format
//! back for cross-checking.
//!
//! The parser is deliberately more liberal than the exporter: statements may
//! separate the mnemonic from its operands with any run of whitespace
//! (including tabs — Qiskit and t|ket⟩ exporters disagree here), and the
//! single quantum register may carry any identifier (`qreg reg[16];` is a
//! legal export several tools produce). Files declaring more than one
//! quantum register are outside the subset and rejected with a clear error.

use crate::circuit::Circuit;
use crate::gate::{Gate, OneQubitKind, TwoQubitKind};
use std::error::Error;
use std::fmt;

/// Error produced by [`parse_qasm`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQasmError {
    line: usize,
    message: String,
}

impl ParseQasmError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseQasmError {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number the error was found on.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseQasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "qasm parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseQasmError {}

/// Serializes a circuit to the OpenQASM 2.0 subset.
///
/// # Example
///
/// ```
/// use qubikos_circuit::{Circuit, Gate, to_qasm};
///
/// let c = Circuit::from_gates(2, [Gate::h(0), Gate::cx(0, 1)]);
/// let text = to_qasm(&c);
/// assert!(text.contains("qreg q[2];"));
/// assert!(text.contains("cx q[0], q[1];"));
/// ```
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    out.push_str(&format!("qreg q[{}];\n", circuit.num_qubits()));
    for gate in circuit.gates() {
        out.push_str(&format!("{gate};\n"));
    }
    out
}

/// Parses the OpenQASM 2.0 subset produced by [`to_qasm`].
///
/// Header lines (`OPENQASM`, `include`), blank lines and `//` comments are
/// accepted; `creg` and `measure` statements are ignored so circuits exported
/// by other tools with trailing measurements still load. The mnemonic and
/// its operands may be separated by any whitespace (spaces or tabs), and the
/// quantum register may carry any identifier — operands must then reference
/// that register.
///
/// # Errors
///
/// Returns a [`ParseQasmError`] for unknown gates, malformed operands, qubit
/// indices outside the declared register, operands naming an undeclared
/// register, a second `qreg` declaration, or a missing `qreg` declaration.
pub fn parse_qasm(text: &str) -> Result<Circuit, ParseQasmError> {
    let mut register: Option<(String, Circuit)> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line_number = lineno + 1;
        let line = raw.split("//").next().unwrap_or("").trim();
        if line.is_empty() || line.starts_with("OPENQASM") || line.starts_with("include") {
            continue;
        }
        let statement = line
            .strip_suffix(';')
            .ok_or_else(|| ParseQasmError::new(line_number, "missing trailing ';'"))?
            .trim();
        if statement.starts_with("creg")
            || statement.starts_with("measure")
            || statement.starts_with("barrier")
        {
            continue;
        }
        if let Some(rest) = statement.strip_prefix("qreg") {
            let (name, size) = parse_register_decl(rest.trim())
                .ok_or_else(|| ParseQasmError::new(line_number, "malformed qreg declaration"))?;
            if let Some((first, _)) = &register {
                return Err(ParseQasmError::new(
                    line_number,
                    format!(
                        "multiple quantum registers are not supported \
                         (register '{first}' already declared, found '{name}')"
                    ),
                ));
            }
            register = Some((name, Circuit::new(size)));
            continue;
        }
        let (reg_name, circuit) = register
            .as_mut()
            .ok_or_else(|| ParseQasmError::new(line_number, "gate before qreg declaration"))?;
        // Split on the first run of whitespace: tool exporters variously emit
        // `cx q[0], q[1]`, `cx\tq[0],q[1]`, and multi-space alignment.
        let (mnemonic, operands) = statement
            .split_once(char::is_whitespace)
            .ok_or_else(|| ParseQasmError::new(line_number, "missing operands"))?;
        let qubits: Vec<usize> = operands
            .split(',')
            .map(|op| parse_qubit_operand(op.trim(), reg_name))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|detail| {
                ParseQasmError::new(line_number, format!("malformed qubit operand: {detail}"))
            })?;
        let gate = build_gate(mnemonic, &qubits).ok_or_else(|| {
            ParseQasmError::new(line_number, format!("unsupported gate '{mnemonic}'"))
        })?;
        if gate.max_qubit() >= circuit.num_qubits() {
            return Err(ParseQasmError::new(
                line_number,
                format!(
                    "qubit index out of range for register of {}",
                    circuit.num_qubits()
                ),
            ));
        }
        circuit.push(gate);
    }
    register
        .map(|(_, circuit)| circuit)
        .ok_or_else(|| ParseQasmError::new(0, "no qreg declaration found"))
}

/// Parses a register declaration body `name[size]` into its parts.
fn parse_register_decl(decl: &str) -> Option<(String, usize)> {
    let (name, rest) = decl.split_once('[')?;
    let name = name.trim();
    if name.is_empty() || !is_identifier(name) {
        return None;
    }
    let size = rest.strip_suffix(']')?.trim().parse().ok()?;
    Some((name.to_string(), size))
}

/// An OpenQASM identifier: a letter or underscore followed by alphanumerics
/// or underscores.
fn is_identifier(name: &str) -> bool {
    let mut chars = name.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parses an operand `reg[i]` against the declared register name.
fn parse_qubit_operand(op: &str, register: &str) -> Result<usize, String> {
    let (name, rest) = op
        .split_once('[')
        .ok_or_else(|| format!("expected '{register}[i]', found '{op}'"))?;
    let name = name.trim();
    if name != register {
        return Err(format!(
            "operand references register '{name}' but '{register}' is declared"
        ));
    }
    let index = rest
        .strip_suffix(']')
        .ok_or_else(|| format!("missing ']' in '{op}'"))?;
    index
        .trim()
        .parse()
        .map_err(|_| format!("non-numeric index in '{op}'"))
}

fn build_gate(mnemonic: &str, qubits: &[usize]) -> Option<Gate> {
    match (mnemonic, qubits) {
        ("h", [q]) => Some(Gate::one(OneQubitKind::H, *q)),
        ("x", [q]) => Some(Gate::one(OneQubitKind::X, *q)),
        ("y", [q]) => Some(Gate::one(OneQubitKind::Y, *q)),
        ("z", [q]) => Some(Gate::one(OneQubitKind::Z, *q)),
        ("s", [q]) => Some(Gate::one(OneQubitKind::S, *q)),
        ("t", [q]) => Some(Gate::one(OneQubitKind::T, *q)),
        ("cx", [a, b]) if a != b => Some(Gate::two(TwoQubitKind::Cx, *a, *b)),
        ("cz", [a, b]) if a != b => Some(Gate::two(TwoQubitKind::Cz, *a, *b)),
        ("swap", [a, b]) if a != b => Some(Gate::two(TwoQubitKind::Swap, *a, *b)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Circuit {
        Circuit::from_gates(
            4,
            [
                Gate::h(0),
                Gate::cx(0, 1),
                Gate::cz(1, 2),
                Gate::swap(2, 3),
                Gate::t(3),
            ],
        )
    }

    #[test]
    fn round_trip_preserves_circuit() {
        let c = sample();
        let parsed = parse_qasm(&to_qasm(&c)).expect("round trip");
        assert_eq!(parsed, c);
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "OPENQASM 2.0;\n\n// a comment\nqreg q[2];\nh q[0]; // trailing comment\ncx q[0], q[1];\n";
        let c = parse_qasm(text).expect("parse");
        assert_eq!(c.gate_count(), 2);
    }

    #[test]
    fn ignores_creg_measure_barrier() {
        let text =
            "qreg q[2];\ncreg c[2];\ncx q[0], q[1];\nbarrier q[0], q[1];\nmeasure q[0] -> c[0];\n";
        let c = parse_qasm(text).expect("parse");
        assert_eq!(c.gate_count(), 1);
    }

    #[test]
    fn rejects_unknown_gate() {
        let err = parse_qasm("qreg q[2];\nccx q[0], q[1];\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("unsupported gate"));
    }

    #[test]
    fn rejects_missing_semicolon() {
        let err = parse_qasm("qreg q[2];\nh q[0]\n").unwrap_err();
        assert!(err.to_string().contains("missing trailing"));
    }

    #[test]
    fn rejects_out_of_range_qubit() {
        let err = parse_qasm("qreg q[2];\ncx q[0], q[5];\n").unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn rejects_gate_before_register() {
        let err = parse_qasm("h q[0];\n").unwrap_err();
        assert!(err.to_string().contains("before qreg"));
    }

    #[test]
    fn rejects_empty_input() {
        assert!(parse_qasm("").is_err());
    }

    #[test]
    fn header_is_well_formed() {
        let text = to_qasm(&Circuit::new(3));
        assert!(text.starts_with("OPENQASM 2.0;\n"));
        assert!(text.contains("qreg q[3];"));
    }

    #[test]
    fn parses_tab_separated_statements() {
        let text = "qreg q[3];\nh\tq[0];\ncx\tq[0],\tq[1];\nswap\tq[1], q[2];\n";
        let c = parse_qasm(text).expect("tabs parse");
        assert_eq!(
            c,
            Circuit::from_gates(3, [Gate::h(0), Gate::cx(0, 1), Gate::swap(1, 2)])
        );
    }

    #[test]
    fn parses_multi_space_separated_statements() {
        let text = "qreg q[2];\ncx   q[0],   q[1];\nh     q[1];\n";
        let c = parse_qasm(text).expect("multi-space parse");
        assert_eq!(c, Circuit::from_gates(2, [Gate::cx(0, 1), Gate::h(1)]));
    }

    #[test]
    fn accepts_any_register_identifier() {
        let text = "OPENQASM 2.0;\nqreg reg[16];\ncx reg[3], reg[4];\nh reg[15];\n";
        let c = parse_qasm(text).expect("named register parses");
        assert_eq!(c.num_qubits(), 16);
        assert_eq!(c, Circuit::from_gates(16, [Gate::cx(3, 4), Gate::h(15)]));
        let underscored = "qreg _q0[2];\ncx _q0[0], _q0[1];\n";
        assert_eq!(parse_qasm(underscored).expect("parses").gate_count(), 1);
    }

    #[test]
    fn rejects_operand_from_undeclared_register() {
        let err = parse_qasm("qreg reg[4];\ncx reg[0], q[1];\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("references register 'q'"));
    }

    #[test]
    fn rejects_multiple_quantum_registers() {
        let err = parse_qasm("qreg a[2];\nqreg b[2];\ncx a[0], b[0];\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("multiple quantum registers"));
        assert!(err.to_string().contains("'a'"));
    }

    #[test]
    fn rejects_malformed_register_names() {
        assert!(parse_qasm("qreg 9q[2];\nh 9q[0];\n").is_err());
        assert!(parse_qasm("qreg [2];\nh q[0];\n").is_err());
    }
}
