//! OpenQASM 2.0 subset import/export.
//!
//! The exported dialect is the small subset every QLS toolchain understands:
//! a single quantum register `q`, the one-qubit gates `h x y z s t` and the
//! two-qubit gates `cx cz swap`. This is enough to hand QUBIKOS circuits to
//! external compilers (Qiskit, t|ket⟩, QMAP) and to read their input format
//! back for cross-checking.

use crate::circuit::Circuit;
use crate::gate::{Gate, OneQubitKind, TwoQubitKind};
use std::error::Error;
use std::fmt;

/// Error produced by [`parse_qasm`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQasmError {
    line: usize,
    message: String,
}

impl ParseQasmError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseQasmError {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number the error was found on.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseQasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "qasm parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseQasmError {}

/// Serializes a circuit to the OpenQASM 2.0 subset.
///
/// # Example
///
/// ```
/// use qubikos_circuit::{Circuit, Gate, to_qasm};
///
/// let c = Circuit::from_gates(2, [Gate::h(0), Gate::cx(0, 1)]);
/// let text = to_qasm(&c);
/// assert!(text.contains("qreg q[2];"));
/// assert!(text.contains("cx q[0], q[1];"));
/// ```
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    out.push_str(&format!("qreg q[{}];\n", circuit.num_qubits()));
    for gate in circuit.gates() {
        out.push_str(&format!("{gate};\n"));
    }
    out
}

/// Parses the OpenQASM 2.0 subset produced by [`to_qasm`].
///
/// Header lines (`OPENQASM`, `include`), blank lines and `//` comments are
/// accepted; `creg` and `measure` statements are ignored so circuits exported
/// by other tools with trailing measurements still load.
///
/// # Errors
///
/// Returns a [`ParseQasmError`] for unknown gates, malformed operands, qubit
/// indices outside the declared register, or a missing `qreg` declaration.
pub fn parse_qasm(text: &str) -> Result<Circuit, ParseQasmError> {
    let mut circuit: Option<Circuit> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line_number = lineno + 1;
        let line = raw.split("//").next().unwrap_or("").trim();
        if line.is_empty() || line.starts_with("OPENQASM") || line.starts_with("include") {
            continue;
        }
        let statement = line
            .strip_suffix(';')
            .ok_or_else(|| ParseQasmError::new(line_number, "missing trailing ';'"))?
            .trim();
        if statement.starts_with("creg")
            || statement.starts_with("measure")
            || statement.starts_with("barrier")
        {
            continue;
        }
        if let Some(rest) = statement.strip_prefix("qreg") {
            let n = parse_register_size(rest.trim())
                .ok_or_else(|| ParseQasmError::new(line_number, "malformed qreg declaration"))?;
            circuit = Some(Circuit::new(n));
            continue;
        }
        let circuit = circuit
            .as_mut()
            .ok_or_else(|| ParseQasmError::new(line_number, "gate before qreg declaration"))?;
        let (mnemonic, operands) = statement
            .split_once(' ')
            .ok_or_else(|| ParseQasmError::new(line_number, "missing operands"))?;
        let qubits: Vec<usize> = operands
            .split(',')
            .map(|op| parse_qubit_operand(op.trim()))
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| ParseQasmError::new(line_number, "malformed qubit operand"))?;
        let gate = build_gate(mnemonic, &qubits).ok_or_else(|| {
            ParseQasmError::new(line_number, format!("unsupported gate '{mnemonic}'"))
        })?;
        if gate.max_qubit() >= circuit.num_qubits() {
            return Err(ParseQasmError::new(
                line_number,
                format!(
                    "qubit index out of range for register of {}",
                    circuit.num_qubits()
                ),
            ));
        }
        circuit.push(gate);
    }
    circuit.ok_or_else(|| ParseQasmError::new(0, "no qreg declaration found"))
}

fn parse_register_size(decl: &str) -> Option<usize> {
    // Accepts `q[5]`.
    let inner = decl.strip_prefix("q[")?.strip_suffix(']')?;
    inner.parse().ok()
}

fn parse_qubit_operand(op: &str) -> Option<usize> {
    let inner = op.strip_prefix("q[")?.strip_suffix(']')?;
    inner.parse().ok()
}

fn build_gate(mnemonic: &str, qubits: &[usize]) -> Option<Gate> {
    match (mnemonic, qubits) {
        ("h", [q]) => Some(Gate::one(OneQubitKind::H, *q)),
        ("x", [q]) => Some(Gate::one(OneQubitKind::X, *q)),
        ("y", [q]) => Some(Gate::one(OneQubitKind::Y, *q)),
        ("z", [q]) => Some(Gate::one(OneQubitKind::Z, *q)),
        ("s", [q]) => Some(Gate::one(OneQubitKind::S, *q)),
        ("t", [q]) => Some(Gate::one(OneQubitKind::T, *q)),
        ("cx", [a, b]) if a != b => Some(Gate::two(TwoQubitKind::Cx, *a, *b)),
        ("cz", [a, b]) if a != b => Some(Gate::two(TwoQubitKind::Cz, *a, *b)),
        ("swap", [a, b]) if a != b => Some(Gate::two(TwoQubitKind::Swap, *a, *b)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Circuit {
        Circuit::from_gates(
            4,
            [
                Gate::h(0),
                Gate::cx(0, 1),
                Gate::cz(1, 2),
                Gate::swap(2, 3),
                Gate::t(3),
            ],
        )
    }

    #[test]
    fn round_trip_preserves_circuit() {
        let c = sample();
        let parsed = parse_qasm(&to_qasm(&c)).expect("round trip");
        assert_eq!(parsed, c);
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "OPENQASM 2.0;\n\n// a comment\nqreg q[2];\nh q[0]; // trailing comment\ncx q[0], q[1];\n";
        let c = parse_qasm(text).expect("parse");
        assert_eq!(c.gate_count(), 2);
    }

    #[test]
    fn ignores_creg_measure_barrier() {
        let text =
            "qreg q[2];\ncreg c[2];\ncx q[0], q[1];\nbarrier q[0], q[1];\nmeasure q[0] -> c[0];\n";
        let c = parse_qasm(text).expect("parse");
        assert_eq!(c.gate_count(), 1);
    }

    #[test]
    fn rejects_unknown_gate() {
        let err = parse_qasm("qreg q[2];\nccx q[0], q[1];\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("unsupported gate"));
    }

    #[test]
    fn rejects_missing_semicolon() {
        let err = parse_qasm("qreg q[2];\nh q[0]\n").unwrap_err();
        assert!(err.to_string().contains("missing trailing"));
    }

    #[test]
    fn rejects_out_of_range_qubit() {
        let err = parse_qasm("qreg q[2];\ncx q[0], q[5];\n").unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn rejects_gate_before_register() {
        let err = parse_qasm("h q[0];\n").unwrap_err();
        assert!(err.to_string().contains("before qreg"));
    }

    #[test]
    fn rejects_empty_input() {
        assert!(parse_qasm("").is_err());
    }

    #[test]
    fn header_is_well_formed() {
        let text = to_qasm(&Circuit::new(3));
        assert!(text.starts_with("OPENQASM 2.0;\n"));
        assert!(text.contains("qreg q[3];"));
    }
}
