//! The [`Circuit`] container.

use crate::gate::{Gate, QubitId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A quantum circuit: an ordered sequence of gates over `num_qubits` program
/// qubits.
///
/// The order of the `gates` vector is the program order; the scheduling
/// semantics (which gates may run in parallel) are derived from it by the
/// [`DependencyDag`](crate::DependencyDag) and by [`Circuit::depth`].
///
/// # Example
///
/// ```
/// use qubikos_circuit::{Circuit, Gate};
///
/// let c = Circuit::from_gates(3, [Gate::cx(0, 1), Gate::cx(1, 2), Gate::h(0)]);
/// assert_eq!(c.gate_count(), 3);
/// assert_eq!(c.two_qubit_gate_count(), 2);
/// assert_eq!(c.swap_count(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Circuit {
    num_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            gates: Vec::new(),
        }
    }

    /// Creates a circuit from an explicit gate sequence.
    ///
    /// # Panics
    ///
    /// Panics if any gate touches a qubit `>= num_qubits`.
    pub fn from_gates<I>(num_qubits: usize, gates: I) -> Self
    where
        I: IntoIterator<Item = Gate>,
    {
        let mut c = Circuit::new(num_qubits);
        for g in gates {
            c.push(g);
        }
        c
    }

    /// Number of program qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate touches a qubit `>= num_qubits`.
    pub fn push(&mut self, gate: Gate) {
        assert!(
            gate.max_qubit() < self.num_qubits,
            "gate {gate} out of range for {} qubits",
            self.num_qubits
        );
        self.gates.push(gate);
    }

    /// Inserts a gate at `index`, shifting later gates back.
    ///
    /// # Panics
    ///
    /// Panics if `index > gate_count()` or the gate is out of range.
    pub fn insert(&mut self, index: usize, gate: Gate) {
        assert!(
            gate.max_qubit() < self.num_qubits,
            "gate {gate} out of range for {} qubits",
            self.num_qubits
        );
        self.gates.insert(index, gate);
    }

    /// Appends every gate of `other` (which must fit in this circuit's qubits).
    ///
    /// # Panics
    ///
    /// Panics if `other` uses more qubits than this circuit.
    pub fn extend_from(&mut self, other: &Circuit) {
        assert!(
            other.num_qubits <= self.num_qubits,
            "cannot extend a {}-qubit circuit with a {}-qubit circuit",
            self.num_qubits,
            other.num_qubits
        );
        self.gates.extend(other.gates.iter().copied());
    }

    /// All gates in program order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Total number of gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` if the circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Number of two-qubit gates (including SWAPs).
    pub fn two_qubit_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Number of SWAP gates.
    pub fn swap_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_swap()).count()
    }

    /// Indices (into [`gates`](Self::gates)) of all two-qubit gates, in order.
    pub fn two_qubit_gate_indices(&self) -> Vec<usize> {
        self.gates
            .iter()
            .enumerate()
            .filter(|(_, g)| g.is_two_qubit())
            .map(|(i, _)| i)
            .collect()
    }

    /// The two-qubit gates only, in program order.
    pub fn two_qubit_gates(&self) -> Vec<Gate> {
        self.gates
            .iter()
            .copied()
            .filter(Gate::is_two_qubit)
            .collect()
    }

    /// Circuit depth under ASAP scheduling (every gate takes one time step,
    /// gates on disjoint qubits run in parallel).
    pub fn depth(&self) -> usize {
        self.scheduled_depth(|_| true)
    }

    /// Depth counting only two-qubit gates (single-qubit gates are free),
    /// the metric QUEKO-style benchmarks target.
    pub fn two_qubit_depth(&self) -> usize {
        self.scheduled_depth(Gate::is_two_qubit)
    }

    fn scheduled_depth(&self, counts: impl Fn(&Gate) -> bool) -> usize {
        let mut ready = vec![0usize; self.num_qubits];
        let mut depth = 0;
        for gate in &self.gates {
            let qs = gate.qubits();
            let start = qs.iter().map(|&q| ready[q]).max().unwrap_or(0);
            let dur = usize::from(counts(gate));
            for &q in &qs {
                ready[q] = start + dur;
            }
            depth = depth.max(start + dur);
        }
        depth
    }

    /// Produces a new circuit with all program-qubit indices rewritten
    /// through `f` onto a register of `new_num_qubits` qubits.
    ///
    /// This is how an initial mapping `f: Q -> P` turns a logical circuit
    /// into a physical one.
    ///
    /// # Panics
    ///
    /// Panics if any remapped gate exceeds `new_num_qubits`.
    pub fn remapped(&self, new_num_qubits: usize, f: impl Fn(QubitId) -> QubitId) -> Circuit {
        let mut c = Circuit::new(new_num_qubits);
        for g in &self.gates {
            c.push(g.map_qubits(&f));
        }
        c
    }

    /// Iterates over (index, gate) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Gate)> {
        self.gates.iter().enumerate()
    }
}

impl Extend<Gate> for Circuit {
    fn extend<T: IntoIterator<Item = Gate>>(&mut self, iter: T) {
        for g in iter {
            self.push(g);
        }
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Circuit(qubits={}, gates={}, depth={})",
            self.num_qubits,
            self.gate_count(),
            self.depth()
        )?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ghz3() -> Circuit {
        Circuit::from_gates(3, [Gate::h(0), Gate::cx(0, 1), Gate::cx(1, 2)])
    }

    #[test]
    fn construction_and_counts() {
        let c = ghz3();
        assert_eq!(c.num_qubits(), 3);
        assert_eq!(c.gate_count(), 3);
        assert_eq!(c.two_qubit_gate_count(), 2);
        assert_eq!(c.swap_count(), 0);
        assert!(!c.is_empty());
        assert_eq!(c.two_qubit_gate_indices(), vec![1, 2]);
        assert_eq!(c.two_qubit_gates().len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_out_of_range_panics() {
        let mut c = Circuit::new(2);
        c.push(Gate::cx(0, 2));
    }

    #[test]
    fn depth_respects_parallelism() {
        // Two CX on disjoint qubit pairs run in parallel.
        let c = Circuit::from_gates(4, [Gate::cx(0, 1), Gate::cx(2, 3)]);
        assert_eq!(c.depth(), 1);
        // Serial chain.
        assert_eq!(ghz3().depth(), 3);
        // Empty circuit.
        assert_eq!(Circuit::new(5).depth(), 0);
    }

    #[test]
    fn two_qubit_depth_ignores_single_qubit_gates() {
        let c = Circuit::from_gates(
            3,
            [
                Gate::h(0),
                Gate::h(0),
                Gate::cx(0, 1),
                Gate::h(1),
                Gate::cx(1, 2),
            ],
        );
        assert_eq!(c.two_qubit_depth(), 2);
        assert!(c.depth() > c.two_qubit_depth());
    }

    #[test]
    fn insert_places_gate_in_order() {
        let mut c = ghz3();
        c.insert(1, Gate::z(2));
        assert_eq!(c.gates()[1], Gate::z(2));
        assert_eq!(c.gate_count(), 4);
    }

    #[test]
    fn extend_from_concatenates() {
        let mut c = ghz3();
        let tail = Circuit::from_gates(2, [Gate::cx(0, 1)]);
        c.extend_from(&tail);
        assert_eq!(c.gate_count(), 4);
    }

    #[test]
    #[should_panic(expected = "cannot extend")]
    fn extend_from_larger_register_panics() {
        let mut c = Circuit::new(2);
        c.extend_from(&Circuit::new(3));
    }

    #[test]
    fn remapped_applies_function() {
        let c = ghz3();
        let mapped = c.remapped(6, |q| q + 3);
        assert_eq!(mapped.num_qubits(), 6);
        assert_eq!(mapped.gates()[1], Gate::cx(3, 4));
    }

    #[test]
    fn extend_trait_and_iter() {
        let mut c = Circuit::new(3);
        c.extend([Gate::h(0), Gate::cx(0, 2)]);
        assert_eq!(c.gate_count(), 2);
        let indices: Vec<usize> = c.iter().map(|(i, _)| i).collect();
        assert_eq!(indices, vec![0, 1]);
    }

    #[test]
    fn display_lists_gates() {
        let text = ghz3().to_string();
        assert!(text.contains("cx q[0], q[1]"));
        assert!(text.contains("qubits=3"));
    }
}
