//! Quantum circuit intermediate representation for the QUBIKOS suite.
//!
//! Layout synthesis only cares about *which* qubits a gate touches and in
//! *what order* two-qubit gates must execute, so the IR here is deliberately
//! lean: a [`Circuit`] is a sequence of [`Gate`]s over `num_qubits` program
//! qubits, from which we derive
//!
//! * the [`InteractionGraph`](interaction::interaction_graph) — one node per
//!   program qubit, one edge per pair that shares a two-qubit gate;
//! * the [`DependencyDag`] — the paper's gate dependency graph `D(G2, EG)`
//!   over two-qubit gates only;
//! * scheduling metrics (depth, two-qubit depth, gate counts); and
//! * an OpenQASM 2.0 subset for interchange with other toolchains.
//!
//! # Example
//!
//! ```
//! use qubikos_circuit::{Circuit, Gate};
//!
//! let mut c = Circuit::new(3);
//! c.push(Gate::h(0));
//! c.push(Gate::cx(0, 1));
//! c.push(Gate::cx(1, 2));
//! assert_eq!(c.two_qubit_gate_count(), 2);
//! assert_eq!(c.depth(), 3);
//! let ig = c.interaction_graph();
//! assert!(ig.has_edge(0, 1));
//! assert!(!ig.has_edge(0, 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuit;
pub mod dag;
pub mod gate;
pub mod interaction;
pub mod metrics;
pub mod qasm;

pub use circuit::Circuit;
pub use dag::{DagNodeId, DependencyDag};
pub use gate::{Gate, OneQubitKind, QubitId, TwoQubitKind};
pub use metrics::CircuitStats;
pub use qasm::{parse_qasm, to_qasm, ParseQasmError};
